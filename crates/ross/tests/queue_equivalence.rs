//! Property test for the pluggable event queues: the ladder queue must
//! dequeue in **bit-identical** order to the reference binary heap for
//! any stream of envelopes — including equal-`recv_time` collisions that
//! fall through to the `(send_time, src, tiebreak)` tiebreaks, and
//! interleaved push/pop patterns that exercise the ladder's frontier
//! (insertions below, inside, and above the current era).

use proptest::prelude::*;
use ross::queue::{BinaryHeapQueue, LadderQueue};
use ross::{Envelope, EventQueue, SimTime};

/// Deterministic splitmix64 stream for building event batches.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A random envelope. `time_span` controls recv-time density: small spans
/// force many equal-`recv_time` collisions so the ordering decision falls
/// to `(send_time, src, tiebreak)` and, transiently, to `uid`.
fn env(rng: &mut Mix, seq: u64, base: u64, time_span: u64) -> Envelope<u64> {
    let recv = base + rng.below(time_span);
    let src = (rng.below(8)) as u32;
    Envelope {
        recv_time: SimTime(recv),
        // send_time ≤ recv_time as in a real run; collide often.
        send_time: SimTime(recv.saturating_sub(rng.below(4))),
        src,
        dst: (rng.below(8)) as u32,
        tiebreak: rng.below(6),
        uid: ross::EventUid { src, seq },
        payload: rng.next(),
    }
}

/// Identity of one dequeued event, payload included: equal fingerprints
/// mean the queues returned the *same event object*, not merely an
/// equally-keyed one.
fn print(e: &Envelope<u64>) -> (u64, u64, u32, u64, u32, u64, u64) {
    (e.recv_time.0, e.send_time.0, e.src, e.tiebreak, e.uid.src, e.uid.seq, e.payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feed the identical random stream — mixed bulk pushes, interleaved
    /// pops, and occasional full drains — into both queues; every pop
    /// must agree, bit for bit.
    #[test]
    fn ladder_and_heap_dequeue_identically(
        seed in 0u64..u64::MAX,
        n_ops in 50usize..400,
        time_span in 1u64..2000,
    ) {
        let mut rng = Mix(seed);
        let mut heap = BinaryHeapQueue::new();
        let mut ladder = LadderQueue::new();
        let mut seq = 0u64;
        let mut base = 0u64; // drifts forward like simulation time
        for _ in 0..n_ops {
            match rng.below(10) {
                // Bulk push: a batch lands at once (window seal pattern).
                0..=4 => {
                    for _ in 0..rng.below(20) + 1 {
                        let e = env(&mut rng, seq, base, time_span);
                        seq += 1;
                        heap.push(e.clone());
                        ladder.push(e);
                    }
                }
                // Interleaved pops below the frontier.
                5..=8 => {
                    for _ in 0..rng.below(8) + 1 {
                        let h = heap.pop();
                        let l = ladder.pop();
                        prop_assert_eq!(h.as_ref().map(print), l.as_ref().map(print));
                        if let Some(e) = h {
                            // Later pushes may land at or before this time:
                            // keep `base` honest but allow stragglers.
                            base = e.recv_time.0.saturating_sub(time_span / 2);
                        }
                    }
                }
                // Rarely: drain to empty, forcing a fresh era on refill.
                _ => {
                    loop {
                        let (h, l) = (heap.pop(), ladder.pop());
                        prop_assert_eq!(h.as_ref().map(print), l.as_ref().map(print));
                        if h.is_none() { break; }
                    }
                }
            }
            prop_assert_eq!(heap.len(), ladder.len());
            prop_assert_eq!(heap.peek_key(), ladder.peek_key());
        }
        // Final drain: whatever is left must come out in the same order.
        loop {
            let (h, l) = (heap.pop(), ladder.pop());
            prop_assert_eq!(h.as_ref().map(print), l.as_ref().map(print));
            if h.is_none() { break; }
        }
    }

    /// Pool-recycling hygiene: with the hot/cold split, envelope payloads
    /// live in an `EventPool` slab whose slots are recycled on pop and
    /// `drain_to`. Stamp every payload as a pure function of its `uid`
    /// and check the identity on every event that comes back out — a
    /// recycled slot serving a *stale* payload (wrong take/insert pairing
    /// anywhere in the rung/bottom/top plumbing) breaks it immediately.
    #[test]
    fn recycled_slots_never_serve_stale_payloads(
        seed in 0u64..u64::MAX,
        n_ops in 50usize..300,
        time_span in 1u64..500,
    ) {
        fn stamp(uid: ross::EventUid) -> u64 {
            (uid.seq ^ 0xa076_1d64_78bd_642f)
                .wrapping_mul(0xe703_7ed1_a0b4_28db)
                ^ uid.src as u64
        }
        let mut rng = Mix(seed);
        let mut heap = BinaryHeapQueue::new();
        let mut ladder = LadderQueue::new();
        let mut seq = 0u64;
        let mut base = 0u64;
        let mut live = 0usize;
        for _ in 0..n_ops {
            match rng.below(10) {
                0..=4 => {
                    for _ in 0..rng.below(20) + 1 {
                        let mut e = env(&mut rng, seq, base, time_span);
                        e.payload = stamp(e.uid);
                        seq += 1;
                        live += 1;
                        heap.push(e.clone());
                        ladder.push(e);
                    }
                }
                5..=7 => {
                    for _ in 0..rng.below(8) + 1 {
                        let (h, l) = (heap.pop(), ladder.pop());
                        for e in h.iter().chain(l.iter()) {
                            prop_assert_eq!(e.payload, stamp(e.uid));
                        }
                        if let Some(e) = h {
                            live -= 1;
                            base = e.recv_time.0.saturating_sub(time_span / 2);
                        }
                    }
                }
                // Bulk eviction through `drain_to` (the set_queue /
                // checkpoint migration path) — recycles every slot at
                // once, then the queues refill into reused storage.
                _ => {
                    let (mut hd, mut ld) = (Vec::new(), Vec::new());
                    heap.drain_to(&mut hd);
                    ladder.drain_to(&mut ld);
                    prop_assert_eq!(hd.len(), live);
                    prop_assert_eq!(ld.len(), live);
                    for e in hd.iter().chain(ld.iter()) {
                        prop_assert_eq!(e.payload, stamp(e.uid));
                    }
                    live = 0;
                }
            }
        }
        loop {
            let (h, l) = (heap.pop(), ladder.pop());
            for e in h.iter().chain(l.iter()) {
                prop_assert_eq!(e.payload, stamp(e.uid));
            }
            if h.is_none() && l.is_none() { break; }
        }
    }

    /// Degenerate streams — every event at the *same* timestamp (the
    /// single-timestamp-era special case, including `u64::MAX`).
    #[test]
    fn identical_timestamps_fall_through_to_tiebreaks(
        seed in 0u64..u64::MAX,
        ts in 0u64..3,
    ) {
        let ts = [0, 12345, u64::MAX][ts as usize];
        let mut rng = Mix(seed);
        let mut heap = BinaryHeapQueue::new();
        let mut ladder = LadderQueue::new();
        for seq in 0..200u64 {
            let mut e = env(&mut rng, seq, 0, 1);
            e.recv_time = SimTime(ts);
            e.send_time = SimTime(ts.saturating_sub(rng.below(3)));
            heap.push(e.clone());
            ladder.push(e);
        }
        loop {
            let (h, l) = (heap.pop(), ladder.pop());
            prop_assert_eq!(h.as_ref().map(print), l.as_ref().map(print));
            if h.is_none() { break; }
        }
    }
}
