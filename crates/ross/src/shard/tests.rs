//! Sharded-run integration tests: loopback and TCP meshes must be
//! bit-identical to the sequential reference for any shard/thread/queue
//! combination, and a run that checkpoints mid-flight (or restarts from
//! such a checkpoint) must converge to the same final state.

use super::checkpoint::ShardCodec;
use super::transport::{loopback_mesh, EventCodec, TcpTransport};
use super::wire::{put_u64, ByteReader};
use super::{shard_owner_map, CheckpointSpec, ShardError, ShardRun};
use crate::queue::QueueKind;
use crate::{Ctx, Envelope, Lp, SimDuration, SimTime, Simulation};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;

/// Explicit-state RNG so the whole LP is checkpointable byte-for-byte
/// (the workspace `SmallRng` shim keeps its state private).
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// PHOLD with a 50 ns minimum delay so a 50 ns window is legal.
#[derive(Clone)]
struct Phold {
    rng: u64,
    n_lps: u32,
    hits: u64,
    checksum: u64,
    horizon_ns: u64,
}

impl Lp for Phold {
    type Event = u64;
    fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
        self.hits += 1;
        self.checksum = self
            .checksum
            .wrapping_mul(6364136223846793005)
            .wrapping_add(ev.payload ^ ev.recv_time.as_ns());
        if ctx.now().as_ns() < self.horizon_ns {
            let dst = (xorshift(&mut self.rng) % self.n_lps as u64) as u32;
            let delay = 50 + xorshift(&mut self.rng) % 451;
            ctx.send(dst, SimDuration::from_ns(delay), self.checksum);
        }
    }
}

struct PholdCodec;

impl EventCodec<u64> for PholdCodec {
    fn encode(&self, ev: &u64, out: &mut Vec<u8>) {
        put_u64(out, *ev);
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> Result<u64, ShardError> {
        r.u64()
    }
}

impl ShardCodec<Phold> for PholdCodec {
    fn save_lp(&self, lp: &Phold, out: &mut Vec<u8>) {
        put_u64(out, lp.rng);
        put_u64(out, lp.hits);
        put_u64(out, lp.checksum);
    }
    fn load_lp(&self, lp: &mut Phold, r: &mut ByteReader<'_>) -> Result<(), ShardError> {
        lp.rng = r.u64()?;
        lp.hits = r.u64()?;
        lp.checksum = r.u64()?;
        Ok(())
    }
}

const N_LPS: u32 = 16;
const WINDOW_NS: u64 = 50;

/// Every shard process must rebuild the identical simulation; this is
/// that shared launch recipe.
fn phold_sim(seed: u64, queue: QueueKind) -> Simulation<Phold> {
    let lps = (0..N_LPS)
        .map(|i| Phold {
            rng: (seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64)) | 1,
            n_lps: N_LPS,
            hits: 0,
            checksum: 0,
            horizon_ns: 30_000,
        })
        .collect();
    let mut sim = Simulation::with_queue(lps, SimDuration::from_ns(1), queue);
    for i in 0..N_LPS {
        sim.schedule(i, SimTime::from_ns(i as u64 % 7), i as u64);
    }
    sim
}

fn fingerprint(sim: &Simulation<Phold>) -> Vec<(u64, u64)> {
    sim.lps().iter().map(|l| (l.hits, l.checksum)).collect()
}

fn sequential_reference(seed: u64) -> (Vec<(u64, u64)>, u64) {
    let mut sim = phold_sim(seed, QueueKind::Ladder);
    let stats = sim.run_sequential(SimTime::MAX);
    (fingerprint(&sim), stats.committed)
}

/// Run one simulation across `n_shards` loopback "processes" (threads
/// here), then merge each shard's owned LP state into one fingerprint —
/// the same merge the process-level harness does with real shards.
fn run_loopback(
    n_shards: usize,
    threads: usize,
    seed: u64,
    queue: QueueKind,
    checkpoint: Option<CheckpointSpec>,
    restore: Option<PathBuf>,
) -> (Vec<(u64, u64)>, u64) {
    let mesh = loopback_mesh::<u64>(n_shards);
    let handles: Vec<_> = mesh
        .into_iter()
        .map(|mut t| {
            let checkpoint = checkpoint.clone();
            let restore = restore.clone();
            std::thread::spawn(move || {
                let mut sim = phold_sim(seed, queue);
                let opts = ShardRun {
                    threads,
                    window: SimDuration::from_ns(WINDOW_NS),
                    checkpoint,
                    restore,
                    codec: Some(&PholdCodec),
                    on_checkpoint: None,
                };
                let stats = sim.run_sharded(&mut t, opts, SimTime::MAX).unwrap();
                (sim, stats)
            })
        })
        .collect();
    merge(handles, n_shards)
}

fn merge(
    handles: Vec<std::thread::JoinHandle<(Simulation<Phold>, crate::RunStats)>>,
    n_shards: usize,
) -> (Vec<(u64, u64)>, u64) {
    let shard_of = shard_owner_map(None, N_LPS as usize, n_shards);
    let mut merged = vec![(0u64, 0u64); N_LPS as usize];
    let mut committed = 0;
    for (s, h) in handles.into_iter().enumerate() {
        let (sim, stats) = h.join().unwrap();
        committed += stats.committed;
        for (g, lp) in sim.lps().iter().enumerate() {
            if shard_of[g] == s as u32 {
                merged[g] = (lp.hits, lp.checksum);
            }
        }
    }
    (merged, committed)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ross-shard-{}-{name}", std::process::id()))
}

#[test]
fn loopback_matches_sequential_across_shards_threads_and_queues() {
    let (want, want_committed) = sequential_reference(2024);
    for n_shards in [1, 2, 4] {
        for threads in [1, 2] {
            for queue in [QueueKind::Heap, QueueKind::Ladder] {
                let (got, committed) = run_loopback(n_shards, threads, 2024, queue, None, None);
                assert_eq!(
                    got, want,
                    "diverged at {n_shards} shards x {threads} threads ({queue:?})"
                );
                assert_eq!(committed, want_committed);
            }
        }
    }
}

#[test]
fn sharded_run_reports_cross_shard_traffic() {
    let mesh = loopback_mesh::<u64>(2);
    let handles: Vec<_> = mesh
        .into_iter()
        .map(|mut t| {
            std::thread::spawn(move || {
                let mut sim = phold_sim(7, QueueKind::Ladder);
                let opts = ShardRun::new(2, SimDuration::from_ns(WINDOW_NS));
                sim.run_sharded(&mut t, opts, SimTime::MAX).unwrap()
            })
        })
        .collect();
    let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let cross: u64 = stats.iter().map(|s| s.cross_shard_events).sum();
    assert!(cross > 0, "PHOLD across 2 shards must exchange events: {stats:?}");
    assert!(stats.iter().all(|s| s.rounds > 0));
}

#[test]
fn tcp_mesh_matches_sequential() {
    let (want, want_committed) = sequential_reference(55);
    let n_shards = 2;
    let listeners: Vec<TcpListener> =
        (0..n_shards).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(me, listener)| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let mut t = TcpTransport::mesh(me, listener, &addrs, Arc::new(PholdCodec)).unwrap();
                let mut sim = phold_sim(55, QueueKind::Ladder);
                let opts = ShardRun::new(2, SimDuration::from_ns(WINDOW_NS));
                let stats = sim.run_sharded(&mut t, opts, SimTime::MAX).unwrap();
                (sim, stats)
            })
        })
        .collect();
    let (got, committed) = merge(handles, n_shards);
    assert_eq!(got, want, "TCP sharded run diverged from sequential");
    assert_eq!(committed, want_committed);
}

#[test]
fn checkpointing_run_is_undisturbed_and_restore_reaches_the_same_state() {
    let (want, _) = sequential_reference(99);
    let path = temp_path("roundtrip.ckpt");
    std::fs::remove_file(&path).ok();

    // A run that checkpoints every 5 µs of virtual time must still be
    // bit-identical to the uninterrupted reference.
    let spec = CheckpointSpec { path: path.clone(), every: SimDuration::from_ns(5_000) };
    let (got, _) = run_loopback(2, 2, 99, QueueKind::Ladder, Some(spec), None);
    assert_eq!(got, want, "checkpointing perturbed the run");

    // The file on disk is from an intermediate GVT, not the end state.
    let bytes = super::checkpoint::read_file(&path).unwrap();
    let (meta, sections) = super::checkpoint::parse_file(&bytes).unwrap();
    assert_eq!(meta.n_shards, 2);
    assert_eq!(meta.n_lps, N_LPS);
    assert_eq!(sections.len(), 2);
    assert!(meta.gvt_ns >= 5_000, "checkpoint taken before the first interval");

    // Fresh processes restored from that cut must converge to the same
    // final state as the uninterrupted run.
    let (restored, _) = run_loopback(2, 2, 99, QueueKind::Ladder, None, Some(path.clone()));
    assert_eq!(restored, want, "restored run diverged from uninterrupted run");

    std::fs::remove_file(&path).ok();
}

#[test]
fn restore_rejects_mismatched_shard_count() {
    let path = temp_path("mismatch.ckpt");
    std::fs::remove_file(&path).ok();
    let spec = CheckpointSpec { path: path.clone(), every: SimDuration::from_ns(5_000) };
    run_loopback(2, 1, 42, QueueKind::Ladder, Some(spec), None);

    let mut mesh = loopback_mesh::<u64>(1);
    let mut t = mesh.pop().unwrap();
    let mut sim = phold_sim(42, QueueKind::Ladder);
    let opts = ShardRun {
        threads: 1,
        window: SimDuration::from_ns(WINDOW_NS),
        checkpoint: None,
        restore: Some(path.clone()),
        codec: Some(&PholdCodec),
        on_checkpoint: None,
    };
    let err = sim.run_sharded(&mut t, opts, SimTime::MAX).unwrap_err();
    match err {
        ShardError::Format(m) => assert!(m.contains("shards"), "unhelpful message: {m}"),
        other => panic!("expected a format error, got {other}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_without_codec_is_refused() {
    let mut mesh = loopback_mesh::<u64>(1);
    let mut t = mesh.pop().unwrap();
    let mut sim = phold_sim(1, QueueKind::Ladder);
    let mut opts = ShardRun::new(1, SimDuration::from_ns(WINDOW_NS));
    opts.checkpoint =
        Some(CheckpointSpec { path: temp_path("nocodec.ckpt"), every: SimDuration::from_ns(1) });
    assert!(sim.run_sharded(&mut t, opts, SimTime::MAX).is_err());
}
