//! Cross-shard transports: how envelopes, GVT tokens and checkpoint
//! blobs move between the N OS processes of a sharded run.
//!
//! Two implementations of [`ShardTransport`]:
//!
//! * [`loopback_mesh`] — in-process `mpsc` channels passing frames by
//!   value. No serialization at all, so it works for any event type and
//!   gives deterministic multi-shard runs inside one test process.
//! * [`TcpTransport`] — a full mesh of TCP connections with
//!   length-prefixed frames (the same `[u32 len][bytes]` idiom as
//!   `telemetry::StreamWriter`'s buffered-file framing, applied to a
//!   socket). Event payloads cross the wire through a model-supplied
//!   [`EventCodec`].
//!
//! Both preserve per-sender FIFO order, which the Mattern-style token
//! fence in [`super`] relies on (a `Gvt` broadcast must not overtake the
//! token that produced it).

use super::wire::{put_bytes, put_u32, put_u64, put_u8, ByteReader};
use super::ShardError;
use crate::event::{Envelope, EventUid};
// The loopback mesh rides the `union_check` seam so checked builds can
// model-check whole multi-shard runs; the TCP transport keeps plain std
// channels (its reader threads are real OS threads either way).
use crate::sync::mpsc;
use crate::time::SimTime;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc as std_mpsc;
use std::sync::Arc;

/// Encode/decode one model event payload for the wire and the
/// checkpoint file. Implementations must be pure: `decode(encode(e))`
/// reproduces `e` exactly, on any host.
pub trait EventCodec<E>: Send + Sync {
    fn encode(&self, ev: &E, out: &mut Vec<u8>);
    fn decode(&self, r: &mut ByteReader<'_>) -> Result<E, ShardError>;
}

/// The GVT token circulated around the shard ring during a fence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Minimum pending timestamp seen so far (ns).
    pub min: u64,
    /// Σ (sent − received) over the shards visited so far. Zero on a
    /// complete ring pass means every cross-shard event has been
    /// absorbed and `min` is the true GVT.
    pub in_flight: i64,
    /// Σ committed events over the shards visited so far (checkpoint
    /// metadata needs the global count; only shard 0 reads the total).
    pub committed: u64,
    /// Wave number within one fence (retries until `in_flight == 0`).
    pub wave: u32,
    /// The synchronization round this fence belongs to.
    pub epoch: u64,
}

/// One transport message.
#[derive(Clone)]
pub enum Frame<E> {
    /// A batch of cross-shard events sent during processing round
    /// `epoch`. The epoch tag is this design's stand-in for Mattern's
    /// white/red coloring: no sends happen during a fence, so a frame
    /// tagged with a different epoch than the fence in progress is a
    /// protocol violation, not a color to wait out.
    Events { epoch: u64, batch: Vec<Envelope<E>> },
    /// GVT reduction token (ring order).
    Token(Token),
    /// Fence result broadcast by shard 0.
    Gvt { gvt: u64 },
    /// An encoded checkpoint section funneled to shard 0.
    Blob(Vec<u8>),
    /// Shard 0's acknowledgment that the checkpoint file is on disk.
    CkptDone { ok: bool },
}

// Hand-written so protocol errors can describe any frame without an
// `E: Debug` bound; payloads are summarized, not dumped.
impl<E> std::fmt::Debug for Frame<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Frame::Events { epoch, batch } => f
                .debug_struct("Events")
                .field("epoch", epoch)
                .field("batch_len", &batch.len())
                .finish(),
            Frame::Token(t) => f.debug_tuple("Token").field(t).finish(),
            Frame::Gvt { gvt } => f.debug_struct("Gvt").field("gvt", gvt).finish(),
            Frame::Blob(b) => f.debug_struct("Blob").field("len", &b.len()).finish(),
            Frame::CkptDone { ok } => f.debug_struct("CkptDone").field("ok", ok).finish(),
        }
    }
}

/// Moves frames between the shards of one run. `send` may buffer;
/// `recv` blocks until a frame arrives. Implementations must preserve
/// per-sender FIFO order.
pub trait ShardTransport<E: Clone + Send>: Send {
    /// This shard's id in `0..n_shards`.
    fn me(&self) -> usize;
    /// Total number of shards.
    fn n_shards(&self) -> usize;
    /// Send one frame to shard `to`.
    fn send(&mut self, to: usize, frame: Frame<E>) -> Result<(), ShardError>;
    /// Block until a frame arrives; returns `(sender, frame)`.
    fn recv(&mut self) -> Result<(usize, Frame<E>), ShardError>;
}

// ---------------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------------

/// A frame tagged with its sending shard, as queued between endpoints.
type TaggedFrame<E> = (usize, Frame<E>);

/// In-process transport endpoint produced by [`loopback_mesh`].
pub struct LoopbackTransport<E> {
    me: usize,
    n: usize,
    txs: Vec<Option<mpsc::Sender<TaggedFrame<E>>>>,
    rx: mpsc::Receiver<TaggedFrame<E>>,
}

/// Build `n` connected loopback endpoints; endpoint `i` is shard `i`.
/// Frames pass by value — no codec, no serialization.
pub fn loopback_mesh<E: Clone + Send>(n: usize) -> Vec<LoopbackTransport<E>> {
    let pairs: Vec<_> = (0..n).map(|_| mpsc::channel::<(usize, Frame<E>)>()).collect();
    let txs: Vec<_> = pairs.iter().map(|(tx, _)| tx.clone()).collect();
    pairs
        .into_iter()
        .enumerate()
        .map(|(me, (_, rx))| LoopbackTransport {
            me,
            n,
            txs: txs.iter().map(|t| Some(t.clone())).collect(),
            rx,
        })
        .collect()
}

impl<E: Clone + Send> ShardTransport<E> for LoopbackTransport<E> {
    fn me(&self) -> usize {
        self.me
    }

    fn n_shards(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: usize, frame: Frame<E>) -> Result<(), ShardError> {
        let tx = self
            .txs
            .get(to)
            .and_then(|t| t.as_ref())
            .ok_or_else(|| ShardError::Protocol(format!("send to unknown shard {to}")))?;
        tx.send((self.me, frame)).map_err(|_| ShardError::Protocol(format!("shard {to} hung up")))
    }

    fn recv(&mut self) -> Result<(usize, Frame<E>), ShardError> {
        self.rx.recv().map_err(|_| ShardError::Protocol("all peer shards hung up".to_string()))
    }
}

// ---------------------------------------------------------------------------
// Frame wire format (TCP)
// ---------------------------------------------------------------------------

const TAG_EVENTS: u8 = 0;
const TAG_TOKEN: u8 = 1;
const TAG_GVT: u8 = 2;
const TAG_BLOB: u8 = 3;
const TAG_CKPT_DONE: u8 = 4;

/// Encode a frame body (everything after the `[u32 len]` prefix).
pub(super) fn encode_frame<E>(frame: &Frame<E>, codec: &dyn EventCodec<E>, out: &mut Vec<u8>) {
    match frame {
        Frame::Events { epoch, batch } => {
            put_u8(out, TAG_EVENTS);
            put_u64(out, *epoch);
            put_u32(out, batch.len() as u32);
            let mut payload = Vec::new();
            for env in batch {
                put_u64(out, env.recv_time.0);
                put_u64(out, env.send_time.0);
                put_u32(out, env.src);
                put_u32(out, env.dst);
                put_u64(out, env.tiebreak);
                put_u32(out, env.uid.src);
                put_u64(out, env.uid.seq);
                payload.clear();
                codec.encode(&env.payload, &mut payload);
                put_bytes(out, &payload);
            }
        }
        Frame::Token(t) => {
            put_u8(out, TAG_TOKEN);
            put_u64(out, t.min);
            put_u64(out, t.in_flight as u64);
            put_u64(out, t.committed);
            put_u32(out, t.wave);
            put_u64(out, t.epoch);
        }
        Frame::Gvt { gvt } => {
            put_u8(out, TAG_GVT);
            put_u64(out, *gvt);
        }
        Frame::Blob(bytes) => {
            put_u8(out, TAG_BLOB);
            put_bytes(out, bytes);
        }
        Frame::CkptDone { ok } => {
            put_u8(out, TAG_CKPT_DONE);
            put_u8(out, *ok as u8);
        }
    }
}

/// Decode a frame body produced by [`encode_frame`].
pub(super) fn decode_frame<E>(
    body: &[u8],
    codec: &dyn EventCodec<E>,
) -> Result<Frame<E>, ShardError> {
    let mut r = ByteReader::new(body);
    let frame = match r.u8()? {
        TAG_EVENTS => {
            let epoch = r.u64()?;
            let count = r.u32()? as usize;
            let mut batch = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let recv_time = SimTime(r.u64()?);
                let send_time = SimTime(r.u64()?);
                let src = r.u32()?;
                let dst = r.u32()?;
                let tiebreak = r.u64()?;
                let uid_src = r.u32()?;
                let uid_seq = r.u64()?;
                let payload_bytes = r.bytes()?;
                let mut pr = ByteReader::new(payload_bytes);
                let payload = codec.decode(&mut pr)?;
                batch.push(Envelope {
                    recv_time,
                    send_time,
                    src,
                    dst,
                    tiebreak,
                    uid: EventUid { src: uid_src, seq: uid_seq },
                    payload,
                });
            }
            Frame::Events { epoch, batch }
        }
        TAG_TOKEN => Frame::Token(Token {
            min: r.u64()?,
            in_flight: r.u64()? as i64,
            committed: r.u64()?,
            wave: r.u32()?,
            epoch: r.u64()?,
        }),
        TAG_GVT => Frame::Gvt { gvt: r.u64()? },
        TAG_BLOB => Frame::Blob(r.bytes()?.to_vec()),
        TAG_CKPT_DONE => Frame::CkptDone { ok: r.u8()? != 0 },
        tag => return Err(ShardError::Format(format!("unknown frame tag {tag}"))),
    };
    if r.remaining() != 0 {
        return Err(ShardError::Format(format!("{} trailing bytes after frame", r.remaining())));
    }
    Ok(frame)
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// Full-mesh TCP transport. One duplex connection per peer pair; for
/// the pair `(i, j)` with `i < j`, shard `j` dials shard `i`'s
/// listener. One reader thread per peer decodes frames into a shared
/// channel, so [`ShardTransport::recv`] observes frames in arrival
/// order while per-peer FIFO order is preserved by TCP itself.
pub struct TcpTransport<E> {
    me: usize,
    n: usize,
    /// Write half per peer (`None` at index `me`).
    writers: Vec<Option<TcpStream>>,
    rx: std_mpsc::Receiver<(usize, Frame<E>)>,
    codec: Arc<dyn EventCodec<E>>,
    scratch: Vec<u8>,
}

impl<E: Clone + Send + 'static> TcpTransport<E> {
    /// Connect the mesh. `listener` is this shard's pre-bound listener
    /// (whose address peers were told); `addrs[j]` is shard `j`'s
    /// listener address. Blocks until all `n-1` connections are up.
    pub fn mesh(
        me: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        codec: Arc<dyn EventCodec<E>>,
    ) -> Result<TcpTransport<E>, ShardError> {
        let n = addrs.len();
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        // Dial every lower-numbered peer, announcing our id.
        for (j, addr) in addrs.iter().enumerate().take(me) {
            let mut s = TcpStream::connect(addr)?;
            s.set_nodelay(true).ok();
            s.write_all(&(me as u32).to_le_bytes())?;
            streams[j] = Some(s);
        }
        // Accept every higher-numbered peer; they identify themselves.
        for _ in me + 1..n {
            let (mut s, _) = listener.accept()?;
            s.set_nodelay(true).ok();
            let mut id = [0u8; 4];
            s.read_exact(&mut id)?;
            let j = u32::from_le_bytes(id) as usize;
            if j <= me || j >= n || streams[j].is_some() {
                return Err(ShardError::Protocol(format!("bad hello from peer {j}")));
            }
            streams[j] = Some(s);
        }

        let (tx, rx) = std_mpsc::channel();
        let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for (j, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else { continue };
            let reader = stream.try_clone()?;
            writers[j] = Some(stream);
            let tx = tx.clone();
            let codec = Arc::clone(&codec);
            std::thread::Builder::new()
                .name(format!("shard-rx-{j}"))
                .spawn(move || read_loop(j, reader, codec, tx))
                .map_err(ShardError::Io)?;
        }
        Ok(TcpTransport { me, n, writers, rx, codec, scratch: Vec::new() })
    }
}

/// Per-peer reader: length-prefixed frames until EOF.
fn read_loop<E: Clone + Send>(
    from: usize,
    mut stream: TcpStream,
    codec: Arc<dyn EventCodec<E>>,
    tx: std_mpsc::Sender<(usize, Frame<E>)>,
) {
    let mut len_buf = [0u8; 4];
    let mut body = Vec::new();
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            return; // peer closed; the process-level launcher notices
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        body.resize(len, 0);
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        match decode_frame(&body, codec.as_ref()) {
            Ok(frame) => {
                if tx.send((from, frame)).is_err() {
                    return; // transport dropped
                }
            }
            Err(_) => return, // corrupt stream: stop; recv() side times out via hangup
        }
    }
}

impl<E: Clone + Send + 'static> ShardTransport<E> for TcpTransport<E> {
    fn me(&self) -> usize {
        self.me
    }

    fn n_shards(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: usize, frame: Frame<E>) -> Result<(), ShardError> {
        self.scratch.clear();
        encode_frame(&frame, self.codec.as_ref(), &mut self.scratch);
        let w = self
            .writers
            .get_mut(to)
            .and_then(|w| w.as_mut())
            .ok_or_else(|| ShardError::Protocol(format!("send to unknown shard {to}")))?;
        w.write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        w.write_all(&self.scratch)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<(usize, Frame<E>), ShardError> {
        self.rx.recv().map_err(|_| ShardError::Protocol("all peer connections closed".to_string()))
    }
}

// Loopback tests use the shimmed channels outside a model-checking
// context, so production cfg only (see `tests/union_check_oracle.rs`
// for the checked-build coverage).
#[cfg(all(test, not(union_check)))]
mod tests {
    use super::*;

    struct U64Codec;
    impl EventCodec<u64> for U64Codec {
        fn encode(&self, ev: &u64, out: &mut Vec<u8>) {
            put_u64(out, *ev);
        }
        fn decode(&self, r: &mut ByteReader<'_>) -> Result<u64, ShardError> {
            r.u64()
        }
    }

    fn env(recv: u64, payload: u64) -> Envelope<u64> {
        Envelope {
            recv_time: SimTime(recv),
            send_time: SimTime(recv.saturating_sub(1)),
            src: 3,
            dst: 9,
            tiebreak: 17,
            uid: EventUid { src: 3, seq: 4 },
            payload,
        }
    }

    #[test]
    fn frames_round_trip_through_the_wire_format() {
        let frames = vec![
            Frame::Events { epoch: 42, batch: vec![env(10, 77), env(11, 0)] },
            Frame::Token(Token { min: 5, in_flight: -2, committed: 88, wave: 1, epoch: 42 }),
            Frame::Gvt { gvt: u64::MAX },
            Frame::Blob(vec![1, 2, 3]),
            Frame::CkptDone { ok: true },
        ];
        for f in frames {
            let mut buf = Vec::new();
            encode_frame(&f, &U64Codec, &mut buf);
            let back = decode_frame(&buf, &U64Codec).unwrap();
            match (&f, &back) {
                (Frame::Events { epoch: a, batch: ba }, Frame::Events { epoch: b, batch: bb }) => {
                    assert_eq!(a, b);
                    assert_eq!(ba, bb);
                    assert_eq!(ba[0].payload, bb[0].payload);
                }
                (Frame::Token(a), Frame::Token(b)) => assert_eq!(a, b),
                (Frame::Gvt { gvt: a }, Frame::Gvt { gvt: b }) => assert_eq!(a, b),
                (Frame::Blob(a), Frame::Blob(b)) => assert_eq!(a, b),
                (Frame::CkptDone { ok: a }, Frame::CkptDone { ok: b }) => assert_eq!(a, b),
                _ => panic!("frame kind changed in round trip"),
            }
        }
    }

    #[test]
    fn corrupt_frames_error_cleanly() {
        assert!(decode_frame::<u64>(&[], &U64Codec).is_err());
        assert!(decode_frame::<u64>(&[99], &U64Codec).is_err());
        let mut buf = Vec::new();
        encode_frame(&Frame::Gvt::<u64> { gvt: 7 }, &U64Codec, &mut buf);
        buf.push(0); // trailing garbage
        assert!(decode_frame::<u64>(&buf, &U64Codec).is_err());
    }

    #[test]
    fn loopback_mesh_routes_and_tags_senders() {
        let mut mesh = loopback_mesh::<u64>(3);
        let mut t2 = mesh.pop().unwrap();
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        t0.send(2, Frame::Gvt { gvt: 1 }).unwrap();
        t1.send(2, Frame::Gvt { gvt: 2 }).unwrap();
        let mut got = [t2.recv().unwrap(), t2.recv().unwrap()];
        got.sort_by_key(|(from, _)| *from);
        assert!(matches!(got[0], (0, Frame::Gvt { gvt: 1 })));
        assert!(matches!(got[1], (1, Frame::Gvt { gvt: 2 })));
        t2.send(0, Frame::CkptDone { ok: true }).unwrap();
        assert!(matches!(t0.recv().unwrap(), (2, Frame::CkptDone { ok: true })));
    }

    #[test]
    fn tcp_mesh_carries_frames_between_threads() {
        let n = 3;
        let listeners: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (me, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                let mut t = TcpTransport::mesh(me, listener, &addrs, Arc::new(U64Codec)).unwrap();
                // Everyone sends one Events frame to every peer, then
                // receives n-1 frames back.
                for j in 0..n {
                    if j != me {
                        t.send(
                            j,
                            Frame::Events {
                                epoch: me as u64,
                                batch: vec![env(100 + me as u64, me as u64)],
                            },
                        )
                        .unwrap();
                    }
                }
                let mut seen = Vec::new();
                for _ in 0..n - 1 {
                    let (from, frame) = t.recv().unwrap();
                    match frame {
                        Frame::Events { epoch, batch } => {
                            assert_eq!(epoch, from as u64);
                            assert_eq!(batch[0].payload, from as u64);
                            seen.push(from);
                        }
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
                seen.sort_unstable();
                let expect: Vec<usize> = (0..n).filter(|&j| j != me).collect();
                assert_eq!(seen, expect);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
