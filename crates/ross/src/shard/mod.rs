//! Process-level sharding: one simulation across N OS processes.
//!
//! Each *shard* owns a subset of the LPs (chosen by the same
//! [`Partition`] bin-packer the in-process schedulers use, applied at
//! the shard level first and then again across each shard's worker
//! threads). Within a shard, [`Simulation::run_sharded`] runs the
//! conservative-parallel round protocol of [`crate::parallel`]
//! unchanged above the transport: workers exchange intra-shard events
//! through lock-free mailboxes, while cross-shard events are buffered
//! into per-peer outboxes and flushed by a *leader* (the spawning
//! thread) through a [`ShardTransport`].
//!
//! ## Distributed GVT
//!
//! The single-process barrier fence is replaced only at the top level:
//! between rounds, the leaders run a Mattern-style token reduction.
//! Shard 0 circulates a [`Token`] carrying the running minimum pending
//! timestamp and the Σ(sent − received) in-transit count; waves repeat
//! until the count is zero, at which point every cross-shard event has
//! been absorbed and the minimum is the true GVT, which shard 0
//! broadcasts. Mattern's white/red coloring collapses to an epoch tag
//! on event frames because no sends ever happen *during* a fence — a
//! frame tagged with a stale epoch is therefore a protocol violation
//! rather than a color to wait out, and the transport asserts it.
//!
//! ## Checkpoint/restart
//!
//! A fence is a consistent cut: nothing is in flight and every LP sits
//! at the fence GVT. On checkpoint rounds each worker serializes its
//! LPs and pending events (via a model-supplied [`ShardCodec`]), the
//! leaders funnel the per-shard sections to shard 0, and shard 0
//! writes one versioned, checksummed file atomically
//! ([`checkpoint`]). A restoring process rebuilds the simulation
//! exactly as the original launch did, then overwrites its owned LPs
//! and pending events from its section of the file.
//!
//! Determinism: the round/window structure is identical to
//! [`crate::parallel`] (window ≤ the model's true minimum delay,
//! enforced by the same hard causality check), so for a fixed seed the
//! merged LP state is bit-identical to `run_sequential` for any shard
//! and thread count.

pub mod checkpoint;
pub mod transport;
pub mod wire;

pub use checkpoint::{ShardCodec, Snapshot, SnapshotMeta};
pub use transport::{
    loopback_mesh, EventCodec, Frame, LoopbackTransport, ShardTransport, TcpTransport, Token,
};

use crate::engine::{seal_outgoing, QueueTelemetry, RunStats, Simulation};
use crate::event::Envelope;
use crate::lp::{Ctx, Lp, LpMeta, Outgoing};
use crate::mailbox::Mailbox;
use crate::partition::Partition;
use crate::queue::{EventQueue, PendingQueue};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{thread, Barrier, Mutex};
use crate::time::{SimDuration, SimTime};
use checkpoint::LpSnapshot;
use std::fmt;
use std::path::PathBuf;

/// Upper bound on events per `Frame::Events`: a burst window is shipped as
/// several bounded frames (serialized, sent and ingested incrementally)
/// rather than one giant allocation on both ends of the transport.
const MAX_FRAME_EVENTS: usize = 256;

/// Errors a sharded run can surface (transport failures, malformed
/// checkpoint files, protocol violations between shards).
#[derive(Debug)]
pub enum ShardError {
    Io(std::io::Error),
    /// Malformed bytes: bad frame, truncated or corrupt checkpoint.
    Format(String),
    /// The shards disagree about the protocol state (stale epoch,
    /// unexpected frame, mismatched mesh).
    Protocol(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard I/O error: {e}"),
            ShardError::Format(m) => write!(f, "shard format error: {m}"),
            ShardError::Protocol(m) => write!(f, "shard protocol error: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Periodic checkpointing: write the fence snapshot to `path` whenever
/// the GVT has advanced `every` past the previous checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    pub path: PathBuf,
    pub every: SimDuration,
}

/// Options for one [`Simulation::run_sharded`] call. Every shard of a
/// run must pass identical options (the harness launcher guarantees
/// this by re-execing the same argv).
pub struct ShardRun<'a, L: Lp> {
    /// Worker threads within this shard.
    pub threads: usize,
    /// Synchronization window (clamped up to the engine lookahead);
    /// must not exceed the model's true minimum send delay.
    pub window: SimDuration,
    /// Periodic checkpointing (requires `codec`).
    pub checkpoint: Option<CheckpointSpec>,
    /// Restore from this checkpoint file before running (requires
    /// `codec`).
    pub restore: Option<PathBuf>,
    /// Model state/payload codec; only needed for checkpoint/restore
    /// (the loopback transport passes events by value).
    pub codec: Option<&'a dyn ShardCodec<L>>,
    /// Called with the cut's GVT (ns) after each checkpoint round
    /// completes on this shard: on shard 0 once the file is durably on
    /// disk, on other shards once shard 0 acknowledged their section.
    /// The harness fault-injection hook lives here.
    pub on_checkpoint: Option<&'a (dyn Fn(u64) + Sync)>,
}

impl<'a, L: Lp> ShardRun<'a, L> {
    /// Plain sharded run: no checkpointing, no restore.
    pub fn new(threads: usize, window: SimDuration) -> Self {
        ShardRun {
            threads,
            window,
            checkpoint: None,
            restore: None,
            codec: None,
            on_checkpoint: None,
        }
    }
}

/// Which shard owns each LP: the same deterministic bin-packing of
/// partition blocks the in-process parallel scheduler uses, applied at
/// the shard level. `partition = None` means every LP is its own block.
pub fn shard_owner_map(partition: Option<&Partition>, n_lps: usize, n_shards: usize) -> Vec<u32> {
    match partition {
        Some(p) => p.assign(n_shards).owner_of,
        None => Partition::per_lp(n_lps).assign(n_shards).owner_of,
    }
}

impl<L: Lp> Simulation<L> {
    /// Run this shard's slice of the simulation, coordinating with the
    /// other shards through `transport`. Every participating process
    /// must have built an identical simulation (same LPs, seeds,
    /// partition and initial events) and pass identical options; each
    /// keeps only the LPs the shard-level partition assigns to it.
    ///
    /// After the call returns, **only the owned LPs' state is
    /// meaningful** — foreign LPs still hold their initial state. The
    /// caller merges owned slices across shards (the harness does this
    /// with per-LP fingerprints; in-process tests adopt LP state from
    /// each shard's simulation).
    ///
    /// Panics on a lookahead violation (same hard causality check as
    /// [`Simulation::run_conservative_parallel`]); returns `Err` on
    /// transport or checkpoint failures.
    pub fn run_sharded(
        &mut self,
        transport: &mut dyn ShardTransport<L::Event>,
        opts: ShardRun<'_, L>,
        until: SimTime,
    ) -> Result<RunStats, ShardError> {
        let start = std::time::Instant::now();
        let me = transport.me();
        let n_shards = transport.n_shards();
        let n_lps = self.lps.len();
        let window = opts.window.max(self.lookahead);
        if (opts.checkpoint.is_some() || opts.restore.is_some()) && opts.codec.is_none() {
            return Err(ShardError::Protocol(
                "checkpoint/restore requires a ShardCodec for this model".to_string(),
            ));
        }
        // A single shard with no checkpoint/restore has no cross-process
        // protocol to run, so the in-process thread pool IS the whole
        // simulation — delegate to the barrier-free async scheduler
        // (bit-identical results, no token fences, work stealing; see
        // DESIGN.md §15) instead of spinning the shard rounds against
        // zero peers.
        if n_shards == 1 && opts.checkpoint.is_none() && opts.restore.is_none() {
            return Ok(self.run_conservative_async(opts.threads, window, until));
        }

        // Shard-level ownership, then worker-level ownership within the
        // owned slice (both from the same deterministic bin-packer).
        let shard_of = shard_owner_map(self.partition.as_ref(), n_lps, n_shards);
        let owned: Vec<u32> =
            (0..n_lps as u32).filter(|&g| shard_of[g as usize] == me as u32).collect();
        let n_threads = opts.threads.max(1).min(owned.len().max(1));
        let sub_blocks: Vec<u32> = owned
            .iter()
            .map(|&g| match &self.partition {
                Some(p) => p.block(g),
                None => g,
            })
            .collect();
        let tassign = Partition::from_blocks(sub_blocks).assign(n_threads);
        // Flat per-gid routing tables (u32::MAX = not ours).
        let mut worker_of = vec![u32::MAX; n_lps];
        let mut wlocal_of = vec![u32::MAX; n_lps];
        for (oi, &gid) in owned.iter().enumerate() {
            worker_of[gid as usize] = tassign.owner_of[oi];
            wlocal_of[gid as usize] = tassign.local_of[oi];
        }
        // Global ids per worker, in worker-local index order.
        let wgids: Vec<Vec<u32>> = tassign
            .locals
            .iter()
            .map(|ol| ol.iter().map(|&oi| owned[oi as usize]).collect())
            .collect();

        // Restore: overwrite owned LP state/meta and replace pending
        // events with this shard's section of the cut.
        let mut committed_base = 0u64;
        let mut initial: Vec<Envelope<L::Event>> = Vec::new();
        if let Some(path) = &opts.restore {
            let codec = opts.codec.unwrap();
            let bytes = checkpoint::read_file(path)?;
            let (meta, raw_sections) = checkpoint::parse_file(&bytes)?;
            if meta.n_shards as usize != n_shards {
                return Err(ShardError::Format(format!(
                    "checkpoint {} was taken with {} shards, cannot restore into {}: shard \
                     rebalancing from a checkpoint is not implemented yet (ROADMAP item 2) — \
                     relaunch with the original shard count (--sched shard:{}:T:L)",
                    path.display(),
                    meta.n_shards,
                    n_shards,
                    meta.n_shards
                )));
            }
            if meta.n_lps as usize != n_lps {
                return Err(ShardError::Format(format!(
                    "checkpoint covers {} LPs but the model has {}",
                    meta.n_lps, n_lps
                )));
            }
            committed_base = meta.committed;
            // The pre-run initial events are part of the history the
            // checkpoint already includes; drop them.
            let mut scrap = Vec::new();
            self.pending.drain_to(&mut scrap);
            drop(scrap);
            let mine = raw_sections
                .iter()
                .map(|s| checkpoint::decode_section(s, codec.as_event_codec()))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .find(|s| s.shard as usize == me)
                .ok_or_else(|| {
                    ShardError::Format(format!("checkpoint has no section for shard {me}"))
                })?;
            for snap in &mine.lps {
                let gid = snap.gid as usize;
                if gid >= n_lps || worker_of[gid] == u32::MAX {
                    return Err(ShardError::Format(format!(
                        "checkpoint LP {} is not owned by shard {me} (partition mismatch)",
                        snap.gid
                    )));
                }
                self.meta[gid] = LpMeta {
                    tiebreak: snap.tiebreak,
                    uid_seq: snap.uid_seq,
                    now: SimTime(snap.now_ns),
                    processed: snap.processed,
                };
                let mut r = wire::ByteReader::new(&snap.state);
                codec.load_lp(&mut self.lps[gid], &mut r)?;
            }
            for env in mine.events {
                if (env.dst as usize) < n_lps && worker_of[env.dst as usize] != u32::MAX {
                    initial.push(env);
                }
            }
        } else {
            // Fresh start: every process built the full initial event
            // set identically; keep only the owned destinations.
            let mut scrap = Vec::with_capacity(self.pending.len());
            self.pending.drain_to(&mut scrap);
            for env in scrap {
                if worker_of[env.dst as usize] != u32::MAX {
                    initial.push(env);
                }
            }
        }

        // Move owned LP state into per-worker vectors; foreign LPs stay
        // in their slots untouched.
        let mut lp_slots: Vec<Option<L>> =
            std::mem::take(&mut self.lps).into_iter().map(Some).collect();
        let mut meta_slots: Vec<Option<LpMeta>> =
            std::mem::take(&mut self.meta).into_iter().map(Some).collect();
        let mut lps_by_worker: Vec<Vec<L>> = (0..n_threads).map(|_| Vec::new()).collect();
        let mut meta_by_worker: Vec<Vec<LpMeta>> = (0..n_threads).map(|_| Vec::new()).collect();
        for (w, gids) in wgids.iter().enumerate() {
            for &gid in gids {
                lps_by_worker[w].push(lp_slots[gid as usize].take().unwrap());
                meta_by_worker[w].push(meta_slots[gid as usize].take().unwrap());
            }
        }

        let qkind = self.queue;
        let mut queues: Vec<PendingQueue<L::Event>> =
            (0..n_threads).map(|_| qkind.new_queue()).collect();
        for env in initial {
            queues[worker_of[env.dst as usize] as usize].push(env);
        }

        // Shared round state.
        let mailboxes: Vec<Mailbox<Envelope<L::Event>>> =
            (0..n_threads).map(|_| Mailbox::new()).collect();
        let barrier = Barrier::new(n_threads + 1); // workers + leader
        let mins: Vec<AtomicU64> = (0..n_threads).map(|_| AtomicU64::new(u64::MAX)).collect();
        let outboxes: Vec<Mutex<Vec<Envelope<L::Event>>>> =
            (0..n_shards).map(|_| Mutex::new(Vec::new())).collect();
        let wend_a = AtomicU64::new(0);
        let done_a = AtomicBool::new(false);
        let ckpt_a = AtomicBool::new(false);
        let committed = AtomicU64::new(0);
        let remote = AtomicU64::new(0);
        let cross = AtomicU64::new(0);
        let end_clock = AtomicU64::new(0);
        let queue_ops = AtomicU64::new(0);
        let queue_max_len = AtomicU64::new(0);
        let pool_high_water = AtomicU64::new(0);
        let pool_recycled = AtomicU64::new(0);
        let violated = AtomicBool::new(false);
        let violation: Mutex<Option<String>> = Mutex::new(None);
        // Oracle (checked builds): the leader publishes each fence's GVT
        // so workers can assert no event from its past is ever processed.
        // A plain std atomic on purpose — invisible to the controlled
        // scheduler; barrier (C) provides the ordering.
        #[cfg(union_check)]
        let gvt_oracle = std::sync::atomic::AtomicU64::new(0);
        let lookahead = self.lookahead;
        let telem_on = self.telemetry.is_some();
        let thread_records: Mutex<Vec<telemetry::ThreadRecord>> = Mutex::new(Vec::new());
        let live_handles = crate::live::LiveHandles::from_sim(&self.live, n_threads);
        let codec = opts.codec;
        let ckpt_on = opts.checkpoint.is_some();

        // Per-worker return slots and checkpoint staging areas.
        type WorkerSlot<L, E> = Mutex<Option<(Vec<L>, Vec<LpMeta>, Vec<Envelope<E>>)>>;
        let results: Vec<WorkerSlot<L, L::Event>> =
            (0..n_threads).map(|_| Mutex::new(None)).collect();
        let ckpt_parts: Vec<CkptPart<L::Event>> =
            (0..n_threads).map(|_| Mutex::new(None)).collect();

        let mut rounds = 0u64;
        let mut fence_err: Option<ShardError> = None;
        let mut next_ckpt =
            opts.checkpoint.as_ref().map(|c| c.every.as_ns().max(1)).unwrap_or(u64::MAX);
        // A restored run resumes its checkpoint cadence from the cut.
        if opts.restore.is_some() && ckpt_on {
            // next_ckpt is recomputed from the first fence GVT below.
            next_ckpt = 0;
        }

        thread::scope(|scope| {
            for t in 0..n_threads {
                let mut lps = std::mem::take(&mut lps_by_worker[t]);
                let mut metas = std::mem::take(&mut meta_by_worker[t]);
                let mut queue = std::mem::replace(&mut queues[t], qkind.new_queue());
                let gids = &wgids[t];
                let worker_of = &worker_of;
                let wlocal_of = &wlocal_of;
                let shard_of = &shard_of;
                let mailboxes = &mailboxes;
                let outboxes = &outboxes;
                let barrier = &barrier;
                let mins = &mins;
                let wend_a = &wend_a;
                let done_a = &done_a;
                let ckpt_a = &ckpt_a;
                let committed = &committed;
                let remote = &remote;
                let cross = &cross;
                let end_clock = &end_clock;
                let queue_ops = &queue_ops;
                let queue_max_len = &queue_max_len;
                let pool_high_water = &pool_high_water;
                let pool_recycled = &pool_recycled;
                let results = &results;
                let ckpt_parts = &ckpt_parts;
                let violated = &violated;
                let violation = &violation;
                let thread_records = &thread_records;
                let live_handles = &live_handles;
                #[cfg(union_check)]
                let gvt_oracle = &gvt_oracle;
                scope.spawn(move || {
                    let mut tap = live_handles.as_ref().map(|h| h.tap(t));
                    let mut live_flushed = (0u64, 0u64); // (remote, cross)
                    let mut inbox: Vec<Envelope<L::Event>> = Vec::new();
                    // Per-destination-shard chunk buffers: cross-shard
                    // sends take the outbox lock once per chunk, not once
                    // per event (`append` leaves the buffer empty with its
                    // capacity intact, so this allocates nothing in steady
                    // state).
                    let mut xchunks: Vec<Vec<Envelope<L::Event>>> =
                        (0..n_shards).map(|_| Vec::new()).collect();
                    let mut out: Vec<Outgoing<L::Event>> = Vec::with_capacity(8);
                    let mut local_committed = 0u64;
                    let mut local_remote = 0u64;
                    let mut local_cross = 0u64;
                    let mut local_clock = 0u64;
                    let mut busy_ns = 0u64;
                    let mut blocked_ns = 0u64;
                    let mut mailbox_hw = 0u64;
                    loop {
                        // (A) Round start. The previous window's
                        // intra-shard sends are all in mailboxes.
                        barrier.wait();
                        mailboxes[t].drain_into(&mut inbox);
                        mailbox_hw = mailbox_hw.max(inbox.len() as u64);
                        for env in inbox.drain(..) {
                            queue.push(env);
                        }
                        // Quiescent interval: the violation flag is only
                        // ever written during processing, so every
                        // worker reads the same frozen value here (see
                        // crate::parallel for why this placement).
                        let halted = violated.load(Ordering::Acquire);
                        let local_min = queue.peek_time().map(|ts| ts.0).unwrap_or(u64::MAX);
                        mins[t].store(local_min, Ordering::Relaxed);
                        // (B) Leader flushes outboxes and runs the
                        // token fence while workers wait.
                        let t0 = telem_on.then(std::time::Instant::now);
                        barrier.wait();
                        // (C) gvt/wend/done/ckpt published.
                        barrier.wait();
                        if let Some(t0) = t0 {
                            blocked_ns += t0.elapsed().as_nanos() as u64;
                        }
                        // Cross-shard fence arrivals.
                        mailboxes[t].drain_into(&mut inbox);
                        mailbox_hw = mailbox_hw.max(inbox.len() as u64);
                        for env in inbox.drain(..) {
                            queue.push(env);
                        }
                        if ckpt_a.load(Ordering::Acquire) {
                            // Serialize this worker's slice of the cut.
                            let codec = codec.unwrap();
                            let mut lp_snaps = Vec::with_capacity(lps.len());
                            for (li, lp) in lps.iter().enumerate() {
                                let mut state = Vec::new();
                                codec.save_lp(lp, &mut state);
                                let m = &metas[li];
                                lp_snaps.push(LpSnapshot {
                                    gid: gids[li],
                                    tiebreak: m.tiebreak,
                                    uid_seq: m.uid_seq,
                                    now_ns: m.now.0,
                                    processed: m.processed,
                                    state,
                                });
                            }
                            let mut evs: Vec<Envelope<L::Event>> = Vec::new();
                            queue.drain_to(&mut evs);
                            for env in &evs {
                                queue.push(env.clone());
                            }
                            *ckpt_parts[t].lock() = Some((lp_snaps, evs));
                            barrier.wait(); // (C2) parts staged
                            barrier.wait(); // (C3) leader wrote/acked
                        }
                        if done_a.load(Ordering::Acquire) {
                            break;
                        }
                        if halted {
                            continue; // wind down without processing
                        }
                        let wend = wend_a.load(Ordering::Acquire);

                        // Process local events in [gvt, wend).
                        let t0 = telem_on.then(std::time::Instant::now);
                        let mut window_committed = 0u64;
                        while let Some(top) = queue.peek() {
                            if top.recv_time.0 >= wend {
                                break;
                            }
                            let env = queue.pop().unwrap();
                            // Oracle (checked builds): the distributed
                            // GVT is a true lower bound on every
                            // processed event.
                            #[cfg(union_check)]
                            assert!(
                                env.recv_time.0
                                    >= gvt_oracle.load(std::sync::atomic::Ordering::Relaxed),
                                "GVT oracle violated: processing event at {} ns below the \
                                 fence GVT {} ns",
                                env.recv_time.0,
                                gvt_oracle.load(std::sync::atomic::Ordering::Relaxed)
                            );
                            local_clock = local_clock.max(env.recv_time.0);
                            let li = wlocal_of[env.dst as usize] as usize;
                            // Same hard causality check as the
                            // in-process parallel scheduler.
                            if env.recv_time < metas[li].now {
                                let mut v = violation.lock();
                                if v.is_none() {
                                    *v = Some(format!(
                                        "lookahead violation: event for LP {} at {} ns \
                                         arrived after the LP reached {} ns; window {} ns \
                                         exceeds the model's minimum send delay",
                                        env.dst, env.recv_time.0, metas[li].now.0, window.0,
                                    ));
                                }
                                violated.store(true, Ordering::Release);
                                queue.push(env);
                                break;
                            }
                            metas[li].now = env.recv_time;
                            metas[li].processed += 1;
                            let mut ctx =
                                Ctx { now: env.recv_time, me: env.dst, lookahead, out: &mut out };
                            lps[li].handle(&env, &mut ctx);
                            local_committed += 1;
                            window_committed += 1;
                            seal_outgoing(
                                env.dst,
                                env.recv_time,
                                &mut metas[li],
                                &mut out,
                                |new| {
                                    let s = shard_of[new.dst as usize] as usize;
                                    if s != me {
                                        local_cross += 1;
                                        let c = &mut xchunks[s];
                                        c.push(new);
                                        if c.len() >= crate::parallel::MAILBOX_CHUNK {
                                            outboxes[s].lock().append(c);
                                        }
                                    } else {
                                        let w = worker_of[new.dst as usize] as usize;
                                        if w == t {
                                            queue.push(new);
                                        } else {
                                            local_remote += 1;
                                            mailboxes[w].push(new);
                                        }
                                    }
                                },
                            );
                        }
                        if let Some(t0) = t0 {
                            busy_ns += t0.elapsed().as_nanos() as u64;
                        }
                        // Flush partial cross-shard chunks: the leader
                        // reads the outboxes after barrier (B) of the next
                        // round, so nothing may linger in worker locals.
                        for (s, c) in xchunks.iter_mut().enumerate() {
                            if !c.is_empty() {
                                outboxes[s].lock().append(c);
                            }
                        }
                        // Visible to the leader before the next fence
                        // (barrier A orders it); the checkpoint metadata
                        // needs the committed count at the cut.
                        committed.fetch_add(window_committed, Ordering::Relaxed);
                        if let Some(tp) = tap.as_mut() {
                            tp.commit(window_committed);
                            tp.remote(local_remote - live_flushed.0);
                            tp.cross_shard(local_cross - live_flushed.1);
                            live_flushed = (local_remote, local_cross);
                            tp.queue_depth(queue.len() as u64);
                            tp.flush();
                        }
                    }
                    remote.fetch_add(local_remote, Ordering::Relaxed);
                    cross.fetch_add(local_cross, Ordering::Relaxed);
                    end_clock.fetch_max(local_clock, Ordering::Relaxed);
                    if telem_on {
                        thread_records.lock().push(telemetry::ThreadRecord {
                            thread: t,
                            events: local_committed,
                            busy_ns,
                            blocked_ns,
                            idle_ns: 0,
                            mailbox_high_water: mailbox_hw,
                        });
                    }
                    queue_ops.fetch_add(queue.ops(), Ordering::Relaxed);
                    queue_max_len.fetch_max(queue.max_len(), Ordering::Relaxed);
                    let ps = queue.pool_stats();
                    if let Some(tp) = tap.as_mut() {
                        tp.remote(local_remote - live_flushed.0);
                        tp.cross_shard(local_cross - live_flushed.1);
                        tp.pool_high_water(ps.high_water);
                        tp.flush();
                    }
                    pool_high_water.fetch_max(ps.high_water, Ordering::Relaxed);
                    pool_recycled.fetch_add(ps.recycled, Ordering::Relaxed);
                    let mut leftover: Vec<Envelope<L::Event>> = Vec::new();
                    queue.drain_to(&mut leftover);
                    *results[t].lock() = Some((lps, metas, leftover));
                });
            }

            // ------------------------------------------------------- leader
            let mut leader_tap = live_handles.as_ref().map(|h| h.tap(0));
            let mut epoch = 0u64;
            let mut sent_total = 0u64;
            let mut recv_total = 0u64;
            // Next-epoch frames that raced ahead of a fence conclusion;
            // replayed by the next fence (see `token_fence`).
            let mut stash: Vec<(usize, Frame<L::Event>)> = Vec::new();
            'rounds: loop {
                barrier.wait(); // (A)
                barrier.wait(); // (B) worker mins published
                                // Flush cross-shard outboxes from the previous window.
                for (s, ob) in outboxes.iter().enumerate() {
                    if s == me {
                        continue;
                    }
                    let mut batch = std::mem::take(&mut *ob.lock());
                    if batch.is_empty() {
                        continue;
                    }
                    sent_total += batch.len() as u64;
                    // Bound frame size: a burst window ships as several
                    // `Events` frames instead of one giant serialization —
                    // the fence stashes and classifies each individually,
                    // so multiple frames per epoch are already handled.
                    while !batch.is_empty() {
                        let rest = if batch.len() > MAX_FRAME_EVENTS {
                            batch.split_off(MAX_FRAME_EVENTS)
                        } else {
                            Vec::new()
                        };
                        let chunk = std::mem::replace(&mut batch, rest);
                        if let Err(e) = transport.send(s, Frame::Events { epoch, batch: chunk }) {
                            fence_err = Some(e);
                            ckpt_a.store(false, Ordering::Release);
                            done_a.store(true, Ordering::Release);
                            barrier.wait(); // (C)
                            break 'rounds;
                        }
                    }
                }
                let halted = violated.load(Ordering::Acquire);
                let local_min = if halted {
                    u64::MAX
                } else {
                    mins.iter().map(|m| m.load(Ordering::Relaxed)).min().unwrap_or(u64::MAX)
                };
                let local_committed = committed.load(Ordering::Relaxed) + committed_base;
                let fence = token_fence(
                    transport,
                    epoch,
                    local_min,
                    sent_total,
                    &mut recv_total,
                    local_committed,
                    &mut stash,
                    |env| {
                        let w = worker_of[env.dst as usize];
                        debug_assert_ne!(w, u32::MAX, "fence delivery for foreign LP {}", env.dst);
                        mailboxes[w as usize].push(env);
                    },
                );
                let (gvt, global_committed) = match fence {
                    Ok(v) => v,
                    Err(e) => {
                        fence_err = Some(e);
                        ckpt_a.store(false, Ordering::Release);
                        done_a.store(true, Ordering::Release);
                        barrier.wait(); // (C)
                        break 'rounds;
                    }
                };
                // A halted (causality-violated) shard keeps fencing with
                // min = MAX so the other shards can drain and terminate;
                // it panics with the violation after the run winds down.
                let done = gvt == u64::MAX || gvt > until.0;
                let wend = gvt.saturating_add(window.0).min(until.0.saturating_add(1));
                if ckpt_on && next_ckpt == 0 {
                    // First fence of a restored run: resume the cadence
                    // one interval past the restored cut.
                    next_ckpt =
                        gvt.saturating_add(opts.checkpoint.as_ref().unwrap().every.as_ns().max(1));
                }
                let do_ckpt = !done && ckpt_on && gvt >= next_ckpt;
                #[cfg(union_check)]
                if gvt != u64::MAX {
                    gvt_oracle.store(gvt, std::sync::atomic::Ordering::Relaxed);
                }
                wend_a.store(wend, Ordering::Release);
                done_a.store(done, Ordering::Release);
                ckpt_a.store(do_ckpt, Ordering::Release);
                if !done {
                    rounds += 1;
                }
                if let Some(tp) = leader_tap.as_mut() {
                    if gvt != u64::MAX {
                        tp.gvt(gvt);
                    }
                    if !done {
                        tp.round();
                    }
                    tp.flush();
                }
                barrier.wait(); // (C)
                if do_ckpt {
                    barrier.wait(); // (C2) workers staged their parts
                    let spec = opts.checkpoint.as_ref().unwrap();
                    let r = write_checkpoint(
                        transport,
                        spec,
                        codec.unwrap().as_event_codec(),
                        &ckpt_parts,
                        &mut stash,
                        SnapshotMeta {
                            gvt_ns: gvt,
                            epoch,
                            n_shards: n_shards as u32,
                            n_lps: n_lps as u32,
                            committed: global_committed,
                        },
                    );
                    next_ckpt = gvt.saturating_add(spec.every.as_ns().max(1));
                    barrier.wait(); // (C3)
                    if r.is_ok() {
                        if let Some(cb) = opts.on_checkpoint {
                            cb(gvt);
                        }
                    }
                    if let Err(e) = r {
                        // Latch the error and let the run finish; the
                        // barrier discipline has already moved past the
                        // point where this round could stop cleanly.
                        if fence_err.is_none() {
                            fence_err = Some(e);
                        }
                    }
                }
                if done {
                    break;
                }
                epoch += 1;
            }
        });

        // Reassemble owned LP state; foreign slots kept their initial
        // state. Reabsorb unprocessed events for a later leg.
        for (w, slot) in results.iter().enumerate() {
            let (lps, metas, leftover) =
                slot.lock().take().expect("shard worker did not report results");
            for ((&gid, lp), meta) in wgids[w].iter().zip(lps).zip(metas) {
                lp_slots[gid as usize] = Some(lp);
                meta_slots[gid as usize] = Some(meta);
            }
            for env in leftover {
                self.pending.push(env);
            }
        }
        self.lps = lp_slots.into_iter().map(|s| s.expect("missing LP")).collect();
        self.meta = meta_slots.into_iter().map(|s| s.expect("missing meta")).collect();
        let mut stray = Vec::new();
        for mb in &mailboxes {
            mb.drain_into(&mut stray);
        }
        for env in stray {
            self.pending.push(env);
        }
        if let Some(msg) = violation.lock().take() {
            panic!("{msg}");
        }
        if let Some(e) = fence_err {
            return Err(e);
        }

        let stats = RunStats {
            committed: committed.load(Ordering::Relaxed),
            remote_events: remote.load(Ordering::Relaxed),
            cross_shard_events: cross.load(Ordering::Relaxed),
            rounds,
            end_time: SimTime(end_clock.load(Ordering::Relaxed)),
            wall_seconds: start.elapsed().as_secs_f64(),
            ..Default::default()
        };
        crate::engine::emit_sched_telemetry(
            self.telemetry.as_deref(),
            "sharded-conservative",
            n_threads,
            &stats,
            0,
            QueueTelemetry {
                kind: qkind,
                ops: queue_ops.load(Ordering::Relaxed),
                max_len: queue_max_len.load(Ordering::Relaxed),
                pool: crate::pool::PoolStats {
                    high_water: pool_high_water.load(Ordering::Relaxed),
                    recycled: pool_recycled.load(Ordering::Relaxed),
                },
            },
            thread_records.into_inner(),
        );
        Ok(stats)
    }
}

/// One worker's staged checkpoint contribution: snapshots of its owned
/// LPs plus their pending events, parked for the leader to assemble.
type CkptPart<E> = Mutex<Option<(Vec<LpSnapshot>, Vec<Envelope<E>>)>>;

/// Assemble this shard's checkpoint section from the staged worker
/// parts and get it onto disk: shard 0 collects every section and
/// writes the file atomically; other shards send their section as a
/// [`Frame::Blob`] and block for the [`Frame::CkptDone`] ack. Runs in
/// the quiescent interval after a fence, so the only frames legal on
/// the wire are blobs and acks.
fn write_checkpoint<E: Clone + Send>(
    transport: &mut dyn ShardTransport<E>,
    spec: &CheckpointSpec,
    codec: &dyn EventCodec<E>,
    parts: &[CkptPart<E>],
    stash: &mut Vec<(usize, Frame<E>)>,
    meta: SnapshotMeta,
) -> Result<(), ShardError> {
    let me = transport.me();
    let n = transport.n_shards();
    let mut lps = Vec::new();
    let mut events = Vec::new();
    for p in parts {
        let (l, e) = p.lock().take().expect("worker did not stage checkpoint part");
        lps.extend(l);
        events.extend(e);
    }
    // Canonical order: identical cuts produce identical bytes.
    lps.sort_by_key(|s| s.gid);
    events.sort();
    let section = checkpoint::ShardSection { shard: me as u32, lps, events };
    let bytes = checkpoint::encode_section(&section, codec);

    if me == 0 {
        let mut sections: Vec<Option<Vec<u8>>> = (0..n).map(|_| None).collect();
        sections[0] = Some(bytes);
        for _ in 1..n {
            match transport.recv()? {
                (from, Frame::Blob(b)) => {
                    if from >= n || sections[from].is_some() {
                        return Err(ShardError::Protocol(format!(
                            "duplicate checkpoint section from shard {from}"
                        )));
                    }
                    sections[from] = Some(b);
                }
                (from, other) => {
                    return Err(ShardError::Protocol(format!(
                        "expected checkpoint blob from shard {from}, got {other:?}"
                    )));
                }
            }
        }
        let sections: Vec<Vec<u8>> = sections.into_iter().map(|s| s.unwrap()).collect();
        let file = checkpoint::assemble_file(&meta, &sections);
        let write = checkpoint::write_atomic(&spec.path, &file);
        let ok = write.is_ok();
        for j in 1..n {
            transport.send(j, Frame::CkptDone { ok })?;
        }
        write.map_err(ShardError::Io)
    } else {
        transport.send(0, Frame::Blob(bytes))?;
        loop {
            match transport.recv()? {
                (0, Frame::CkptDone { ok: true }) => return Ok(()),
                (0, Frame::CkptDone { ok: false }) => {
                    return Err(ShardError::Io(std::io::Error::other(
                        "shard 0 failed to write checkpoint",
                    )));
                }
                // A peer that already got its ack can race into the
                // next round and send us next-epoch traffic before our
                // own ack is dequeued; stash it for the next fence.
                (from, Frame::Events { epoch, batch }) => {
                    if classify_epoch(epoch, meta.epoch)? {
                        return Err(ShardError::Protocol(format!(
                            "current-epoch events from shard {from} while awaiting checkpoint ack"
                        )));
                    }
                    stash.push((from, Frame::Events { epoch, batch }));
                }
                (from, Frame::Token(t)) => {
                    if classify_epoch(t.epoch, meta.epoch)? {
                        return Err(ShardError::Protocol(format!(
                            "current-epoch token from shard {from} while awaiting checkpoint ack"
                        )));
                    }
                    stash.push((from, Frame::Token(t)));
                }
                (from, other) => {
                    return Err(ShardError::Protocol(format!(
                        "expected checkpoint ack from shard 0, got {other:?} from {from}"
                    )));
                }
            }
        }
    }
}

/// Frame epoch relative to the fence in progress.
fn classify_epoch(frame_epoch: u64, fence_epoch: u64) -> Result<bool, ShardError> {
    if frame_epoch == fence_epoch {
        Ok(true)
    } else if frame_epoch == fence_epoch + 1 {
        // Causally legal early arrival: a peer can only be one round
        // ahead, and only after this fence's outcome (the Gvt broadcast
        // or the checkpoint ack) was already issued — our copy just has
        // not been dequeued yet. Stash it for the next fence.
        Ok(false)
    } else {
        Err(ShardError::Protocol(format!(
            "frame from epoch {frame_epoch} arrived during fence of epoch {fence_epoch}"
        )))
    }
}

/// One Mattern-style token fence. Returns the agreed GVT and (on
/// shard 0 only) the global committed-event count; other shards get 0
/// for the count. Events arriving during the fence are delivered
/// through `deliver` and folded into the local minimum. `stash` holds
/// next-epoch frames that raced ahead of this fence's conclusion; they
/// are replayed at the start of the next fence.
#[allow(clippy::too_many_arguments)]
fn token_fence<E: Clone + Send>(
    transport: &mut dyn ShardTransport<E>,
    epoch: u64,
    mut local_min: u64,
    sent_total: u64,
    recv_total: &mut u64,
    local_committed: u64,
    stash: &mut Vec<(usize, Frame<E>)>,
    mut deliver: impl FnMut(Envelope<E>),
) -> Result<(u64, u64), ShardError> {
    let me = transport.me();
    let n = transport.n_shards();
    if n == 1 {
        return Ok((local_min, local_committed));
    }
    // Frames stashed during the previous fence all belong to this one.
    let mut replay: std::collections::VecDeque<(usize, Frame<E>)> = std::mem::take(stash).into();
    let mut absorb = |batch: Vec<Envelope<E>>, local_min: &mut u64, recv_total: &mut u64| {
        for env in batch {
            *local_min = (*local_min).min(env.recv_time.0);
            *recv_total += 1;
            deliver(env);
        }
    };

    if me == 0 {
        let mut wave = 0u32;
        loop {
            transport.send(
                1,
                Frame::Token(Token {
                    min: local_min,
                    in_flight: sent_total as i64 - *recv_total as i64,
                    committed: local_committed,
                    wave,
                    epoch,
                }),
            )?;
            let complete = loop {
                let (from, frame) = match replay.pop_front() {
                    Some(f) => f,
                    None => transport.recv()?,
                };
                match frame {
                    Frame::Events { epoch: e, batch } => {
                        if classify_epoch(e, epoch)? {
                            absorb(batch, &mut local_min, recv_total);
                        } else {
                            stash.push((from, Frame::Events { epoch: e, batch }));
                        }
                    }
                    Frame::Token(t) => {
                        if !classify_epoch(t.epoch, epoch)? {
                            stash.push((from, Frame::Token(t)));
                            continue;
                        }
                        // in_flight == 0 means every shard had absorbed
                        // everything sent before its token visit, so
                        // t.min is complete. Otherwise retry the wave
                        // with refreshed counters.
                        break if t.in_flight == 0 { Some(t) } else { None };
                    }
                    other => {
                        return Err(ShardError::Protocol(format!(
                            "unexpected {other:?} from shard {from} during fence"
                        )));
                    }
                }
            };
            match complete {
                Some(t) => {
                    for j in 1..n {
                        transport.send(j, Frame::Gvt { gvt: t.min })?;
                    }
                    return Ok((t.min, t.committed));
                }
                None => wave += 1,
            }
        }
    } else {
        loop {
            let (from, frame) = match replay.pop_front() {
                Some(f) => f,
                None => transport.recv()?,
            };
            match frame {
                Frame::Events { epoch: e, batch } => {
                    if classify_epoch(e, epoch)? {
                        absorb(batch, &mut local_min, recv_total);
                    } else {
                        stash.push((from, Frame::Events { epoch: e, batch }));
                    }
                }
                Frame::Token(mut t) => {
                    if !classify_epoch(t.epoch, epoch)? {
                        stash.push((from, Frame::Token(t)));
                        continue;
                    }
                    t.min = t.min.min(local_min);
                    t.in_flight += sent_total as i64 - *recv_total as i64;
                    t.committed += local_committed;
                    transport.send((me + 1) % n, Frame::Token(t))?;
                }
                // A Gvt can only belong to the fence in progress: the
                // next one requires the token to visit us first.
                Frame::Gvt { gvt } => return Ok((gvt, 0)),
                other => {
                    return Err(ShardError::Protocol(format!(
                        "unexpected {other:?} from shard {from} during fence"
                    )));
                }
            }
        }
    }
}

impl<L: Lp> dyn ShardCodec<L> + '_ {
    /// Upcast to the event-payload half of the codec.
    pub fn as_event_codec(&self) -> &dyn EventCodec<L::Event> {
        self
    }
}

// Real multi-thread runs — production cfg only (the checked-build twin
// lives in `tests/union_check_oracle.rs`).
#[cfg(all(test, not(union_check)))]
mod tests;
