//! Byte-level encoding helpers shared by the TCP transport framing and
//! the checkpoint file format: little-endian fixed-width integers and a
//! bounds-checked cursor. Kept deliberately tiny — the framing must be
//! decodable by a different build of the same binary, so nothing here
//! depends on layout, endianness of the host, or the serde shims.

use super::ShardError;

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32` (little-endian).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte slice (`u32` length).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// A bounds-checked read cursor over a byte slice. Every accessor
/// returns [`ShardError::Format`] instead of panicking on truncated
/// input — checkpoint files and network frames are untrusted.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ShardError> {
        if self.buf.len() - self.pos < n {
            return Err(ShardError::Format(format!(
                "truncated input: wanted {n} bytes for {what}, {} left",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, ShardError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn u32(&mut self) -> Result<u32, ShardError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, ShardError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte slice written by [`put_bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8], ShardError> {
        let n = self.u32()? as usize;
        self.take(n, "length-prefixed bytes")
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// FNV-1a over a byte stream — the checkpoint file checksum. Not
/// cryptographic; it catches truncation and bit rot, which is all a
/// restart path needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_bytes() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_bytes(&mut buf, b"payload");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 100); // length prefix promising 100 bytes
        buf.extend_from_slice(&[1, 2, 3]);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.bytes(), Err(ShardError::Format(_))));
        let mut r2 = ByteReader::new(&[1, 2]);
        assert!(r2.u64().is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // Reference value for the empty string per FNV-1a spec.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
