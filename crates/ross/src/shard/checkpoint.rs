//! Checkpoint/restart file format for sharded runs.
//!
//! A checkpoint is taken inside a GVT fence: no events are in flight,
//! every LP sits exactly at the fence, so per-LP state plus each
//! shard's pending events is a consistent cut of the whole simulation.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic    8  b"UNIONCKP"
//! version  4  u32 (currently 1)
//! meta     4+n  u32 length + JSON (serde shims): gvt_ns, epoch,
//!               n_shards, n_lps, committed
//! sections 4  u32 count, then per section: u32 length + bytes
//! checksum 8  u64 FNV-1a over everything between magic and checksum
//! ```
//!
//! Each section holds one shard's owned LPs (engine meta + model state
//! via [`ShardCodec::save_lp`]) and its pending events (payloads via
//! [`EventCodec::encode`]). Every decode path returns
//! [`ShardError::Format`] on truncated/corrupt/wrong-version input —
//! the CLI maps that to exit 2, never a panic.

use super::transport::EventCodec;
use super::wire::{fnv1a, put_bytes, put_u32, put_u64, ByteReader};
use super::ShardError;
use crate::event::{Envelope, EventUid};
use crate::lp::Lp;
use crate::time::SimTime;
use serde::Value;
use std::io::Write;
use std::path::Path;

/// Magic bytes at offset 0 of every checkpoint file.
pub const MAGIC: &[u8; 8] = b"UNIONCKP";
/// Current format version.
pub const VERSION: u32 = 1;

/// Extends [`EventCodec`] with model-state save/load, making an LP type
/// checkpointable. `load_lp` overwrites a freshly built LP in place, so
/// a restoring process first rebuilds the simulation exactly as the
/// original run did, then patches in the snapshot.
pub trait ShardCodec<L: Lp>: EventCodec<L::Event> {
    fn save_lp(&self, lp: &L, out: &mut Vec<u8>);
    fn load_lp(&self, lp: &mut L, r: &mut ByteReader<'_>) -> Result<(), ShardError>;
}

/// Run-level metadata stored in the file header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// The fence GVT at which the cut was taken (ns).
    pub gvt_ns: u64,
    /// Synchronization round of the fence.
    pub epoch: u64,
    /// Shard count the run was (and must be re-) launched with.
    pub n_shards: u32,
    /// Total LP count, as a cheap model-shape check.
    pub n_lps: u32,
    /// Events committed across all shards up to the cut.
    pub committed: u64,
}

/// One LP's engine bookkeeping plus opaque model state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LpSnapshot {
    pub gid: u32,
    pub tiebreak: u64,
    pub uid_seq: u64,
    pub now_ns: u64,
    pub processed: u64,
    pub state: Vec<u8>,
}

/// One shard's part of the cut.
#[derive(Clone, Debug)]
pub struct ShardSection<E> {
    pub shard: u32,
    pub lps: Vec<LpSnapshot>,
    pub events: Vec<Envelope<E>>,
}

/// A fully decoded checkpoint.
#[derive(Clone, Debug)]
pub struct Snapshot<E> {
    pub meta: SnapshotMeta,
    pub sections: Vec<ShardSection<E>>,
}

/// Encode one shard's section (canonical order: LPs by gid, events by
/// total event order, so identical cuts produce identical bytes).
pub fn encode_section<E>(section: &ShardSection<E>, codec: &dyn EventCodec<E>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, section.shard);
    put_u32(&mut out, section.lps.len() as u32);
    for lp in &section.lps {
        put_u32(&mut out, lp.gid);
        put_u64(&mut out, lp.tiebreak);
        put_u64(&mut out, lp.uid_seq);
        put_u64(&mut out, lp.now_ns);
        put_u64(&mut out, lp.processed);
        put_bytes(&mut out, &lp.state);
    }
    put_u32(&mut out, section.events.len() as u32);
    let mut payload = Vec::new();
    for env in &section.events {
        put_u64(&mut out, env.recv_time.0);
        put_u64(&mut out, env.send_time.0);
        put_u32(&mut out, env.src);
        put_u32(&mut out, env.dst);
        put_u64(&mut out, env.tiebreak);
        put_u32(&mut out, env.uid.src);
        put_u64(&mut out, env.uid.seq);
        payload.clear();
        codec.encode(&env.payload, &mut payload);
        put_bytes(&mut out, &payload);
    }
    out
}

/// Decode a section written by [`encode_section`].
pub fn decode_section<E>(
    bytes: &[u8],
    codec: &dyn EventCodec<E>,
) -> Result<ShardSection<E>, ShardError> {
    let mut r = ByteReader::new(bytes);
    let shard = r.u32()?;
    let n_lps = r.u32()? as usize;
    let mut lps = Vec::with_capacity(n_lps.min(1 << 20));
    for _ in 0..n_lps {
        lps.push(LpSnapshot {
            gid: r.u32()?,
            tiebreak: r.u64()?,
            uid_seq: r.u64()?,
            now_ns: r.u64()?,
            processed: r.u64()?,
            state: r.bytes()?.to_vec(),
        });
    }
    let n_events = r.u32()? as usize;
    let mut events = Vec::with_capacity(n_events.min(1 << 20));
    for _ in 0..n_events {
        let recv_time = SimTime(r.u64()?);
        let send_time = SimTime(r.u64()?);
        let src = r.u32()?;
        let dst = r.u32()?;
        let tiebreak = r.u64()?;
        let uid_src = r.u32()?;
        let uid_seq = r.u64()?;
        let payload_bytes = r.bytes()?;
        let mut pr = ByteReader::new(payload_bytes);
        let payload = codec.decode(&mut pr)?;
        events.push(Envelope {
            recv_time,
            send_time,
            src,
            dst,
            tiebreak,
            uid: EventUid { src: uid_src, seq: uid_seq },
            payload,
        });
    }
    if r.remaining() != 0 {
        return Err(ShardError::Format(format!("{} trailing bytes in section", r.remaining())));
    }
    Ok(ShardSection { shard, lps, events })
}

fn meta_json(meta: &SnapshotMeta) -> String {
    let v = Value::Object(vec![
        ("gvt_ns".to_string(), Value::UInt(meta.gvt_ns)),
        ("epoch".to_string(), Value::UInt(meta.epoch)),
        ("n_shards".to_string(), Value::UInt(meta.n_shards as u64)),
        ("n_lps".to_string(), Value::UInt(meta.n_lps as u64)),
        ("committed".to_string(), Value::UInt(meta.committed)),
    ]);
    serde_json::to_string(&v).unwrap_or_default()
}

fn parse_meta(json: &str) -> Result<SnapshotMeta, ShardError> {
    let v: Value = serde_json::from_str(json)
        .map_err(|e| ShardError::Format(format!("checkpoint metadata is not JSON: {e}")))?;
    let field = |k: &str| {
        v.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| ShardError::Format(format!("checkpoint metadata missing `{k}`")))
    };
    Ok(SnapshotMeta {
        gvt_ns: field("gvt_ns")?,
        epoch: field("epoch")?,
        n_shards: field("n_shards")? as u32,
        n_lps: field("n_lps")? as u32,
        committed: field("committed")?,
    })
}

/// Assemble the on-disk byte stream from already-encoded sections (the
/// form shard 0 receives them in over the transport).
pub fn assemble_file(meta: &SnapshotMeta, sections: &[Vec<u8>]) -> Vec<u8> {
    let mut body = Vec::new();
    put_u32(&mut body, VERSION);
    put_bytes(&mut body, meta_json(meta).as_bytes());
    put_u32(&mut body, sections.len() as u32);
    for s in sections {
        put_bytes(&mut body, s);
    }
    let sum = fnv1a(&body);
    let mut file = Vec::with_capacity(MAGIC.len() + body.len() + 8);
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&body);
    put_u64(&mut file, sum);
    file
}

/// Parse the container: magic, version, checksum; returns the metadata
/// and the raw section byte ranges for [`decode_section`].
pub fn parse_file(bytes: &[u8]) -> Result<(SnapshotMeta, Vec<&[u8]>), ShardError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(ShardError::Format("checkpoint file is truncated".to_string()));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(ShardError::Format(
            "not a checkpoint file (bad magic; expected UNIONCKP)".to_string(),
        ));
    }
    let body = &bytes[MAGIC.len()..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(ShardError::Format(
            "checkpoint checksum mismatch (file is corrupt or truncated)".to_string(),
        ));
    }
    let mut r = ByteReader::new(body);
    let version = r.u32()?;
    if version != VERSION {
        return Err(ShardError::Format(format!(
            "checkpoint format version {version} is not supported (this build reads {VERSION})"
        )));
    }
    let meta_bytes = r.bytes()?;
    let meta = parse_meta(
        std::str::from_utf8(meta_bytes)
            .map_err(|_| ShardError::Format("checkpoint metadata is not UTF-8".to_string()))?,
    )?;
    let n_sections = r.u32()? as usize;
    let mut sections = Vec::with_capacity(n_sections.min(1 << 16));
    for _ in 0..n_sections {
        sections.push(r.bytes()?);
    }
    if r.remaining() != 0 {
        return Err(ShardError::Format(format!(
            "{} trailing bytes after checkpoint sections",
            r.remaining()
        )));
    }
    Ok((meta, sections))
}

/// Encode a full snapshot to the on-disk byte stream.
pub fn encode_snapshot<E>(snap: &Snapshot<E>, codec: &dyn EventCodec<E>) -> Vec<u8> {
    let sections: Vec<Vec<u8>> = snap.sections.iter().map(|s| encode_section(s, codec)).collect();
    assemble_file(&snap.meta, &sections)
}

/// Decode a full snapshot from the on-disk byte stream.
pub fn decode_snapshot<E>(
    bytes: &[u8],
    codec: &dyn EventCodec<E>,
) -> Result<Snapshot<E>, ShardError> {
    let (meta, raw) = parse_file(bytes)?;
    let sections = raw.iter().map(|s| decode_section(s, codec)).collect::<Result<Vec<_>, _>>()?;
    Ok(Snapshot { meta, sections })
}

/// Write the checkpoint atomically: temp file in the same directory,
/// then rename, so a crash mid-write never clobbers the previous
/// checkpoint.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read a checkpoint file into memory (decode separately).
pub fn read_file(path: &Path) -> Result<Vec<u8>, ShardError> {
    std::fs::read(path).map_err(|e| {
        ShardError::Io(std::io::Error::new(
            e.kind(),
            format!("cannot read checkpoint {}: {e}", path.display()),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::wire::put_u64 as w64;

    struct U64Codec;
    impl EventCodec<u64> for U64Codec {
        fn encode(&self, ev: &u64, out: &mut Vec<u8>) {
            w64(out, *ev);
        }
        fn decode(&self, r: &mut ByteReader<'_>) -> Result<u64, ShardError> {
            r.u64()
        }
    }

    fn sample() -> Snapshot<u64> {
        Snapshot {
            meta: SnapshotMeta { gvt_ns: 123, epoch: 9, n_shards: 2, n_lps: 4, committed: 1000 },
            sections: vec![
                ShardSection {
                    shard: 0,
                    lps: vec![LpSnapshot {
                        gid: 0,
                        tiebreak: 5,
                        uid_seq: 6,
                        now_ns: 100,
                        processed: 7,
                        state: vec![1, 2, 3],
                    }],
                    events: vec![Envelope {
                        recv_time: SimTime(130),
                        send_time: SimTime(100),
                        src: 0,
                        dst: 1,
                        tiebreak: 4,
                        uid: EventUid { src: 0, seq: 5 },
                        payload: 0xfeed,
                    }],
                },
                ShardSection { shard: 1, lps: vec![], events: vec![] },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let bytes = encode_snapshot(&snap, &U64Codec);
        let back = decode_snapshot(&bytes, &U64Codec).unwrap();
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.sections.len(), 2);
        assert_eq!(back.sections[0].lps, snap.sections[0].lps);
        assert_eq!(back.sections[0].events, snap.sections[0].events);
        assert_eq!(back.sections[0].events[0].payload, 0xfeed);
    }

    #[test]
    fn wrong_magic_version_and_corruption_are_rejected() {
        let snap = sample();
        let good = encode_snapshot(&snap, &U64Codec);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(decode_snapshot::<u64>(&bad_magic, &U64Codec),
            Err(ShardError::Format(m)) if m.contains("magic")));

        // Version is checksummed, so a tampered version first fails the
        // checksum; rebuild with a bad version and a fresh checksum to
        // reach the version check itself.
        let mut body = good[8..good.len() - 8].to_vec();
        body[0] = 99;
        let mut bad_version = Vec::new();
        bad_version.extend_from_slice(MAGIC);
        bad_version.extend_from_slice(&body);
        put_u64(&mut bad_version, fnv1a(&body));
        assert!(matches!(decode_snapshot::<u64>(&bad_version, &U64Codec),
            Err(ShardError::Format(m)) if m.contains("version")));

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        assert!(matches!(decode_snapshot::<u64>(&flipped, &U64Codec),
            Err(ShardError::Format(m)) if m.contains("checksum")));

        for cut in [0, 4, good.len() / 3, good.len() - 1] {
            assert!(decode_snapshot::<u64>(&good[..cut], &U64Codec).is_err());
        }
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("ross-ckpt-test-{}", std::process::id()));
        let path = dir.join("a.ckpt");
        let snap = sample();
        let bytes = encode_snapshot(&snap, &U64Codec);
        write_atomic(&path, &bytes).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, bytes);
        assert!(read_file(&dir.join("missing.ckpt")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// Deterministic snapshot with arbitrary content derived from `seed`:
    /// LP state blobs of varying length, events with extreme field values,
    /// and empty sections all appear over the proptest case budget.
    fn random_snapshot(
        seed: u64,
        n_shards: usize,
        lps_per: usize,
        evs_per: usize,
    ) -> Snapshot<u64> {
        let mut s = seed | 1;
        let mut sections = Vec::new();
        for shard in 0..n_shards {
            let lps = (0..lps_per)
                .map(|i| LpSnapshot {
                    gid: (shard * lps_per + i) as u32,
                    tiebreak: xorshift(&mut s),
                    uid_seq: xorshift(&mut s),
                    now_ns: xorshift(&mut s),
                    processed: xorshift(&mut s),
                    state: (0..(xorshift(&mut s) % 17)).map(|_| xorshift(&mut s) as u8).collect(),
                })
                .collect();
            let events = (0..evs_per)
                .map(|_| Envelope {
                    recv_time: SimTime(xorshift(&mut s)),
                    send_time: SimTime(xorshift(&mut s)),
                    src: xorshift(&mut s) as u32,
                    dst: xorshift(&mut s) as u32,
                    tiebreak: xorshift(&mut s),
                    uid: EventUid { src: xorshift(&mut s) as u32, seq: xorshift(&mut s) },
                    payload: xorshift(&mut s),
                })
                .collect();
            sections.push(ShardSection { shard: shard as u32, lps, events });
        }
        Snapshot {
            meta: SnapshotMeta {
                gvt_ns: xorshift(&mut s),
                epoch: xorshift(&mut s),
                n_shards: n_shards as u32,
                n_lps: (n_shards * lps_per) as u32,
                committed: xorshift(&mut s),
            },
            sections,
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        #[test]
        fn random_snapshots_round_trip(
            seed in 0u64..1_000_000_000,
            n_shards in 1usize..5,
            lps_per in 0usize..4,
            evs_per in 0usize..4,
        ) {
            let snap = random_snapshot(seed, n_shards, lps_per, evs_per);
            let bytes = encode_snapshot(&snap, &U64Codec);
            let back = decode_snapshot::<u64>(&bytes, &U64Codec).unwrap();
            assert_eq!(back.meta, snap.meta);
            assert_eq!(back.sections.len(), snap.sections.len());
            for (b, a) in back.sections.iter().zip(&snap.sections) {
                assert_eq!(b.shard, a.shard);
                assert_eq!(b.lps, a.lps);
                assert_eq!(b.events, a.events);
            }
        }

        #[test]
        fn corrupt_or_truncated_snapshots_error_and_never_panic(
            seed in 0u64..1_000_000_000,
            n_shards in 1usize..4,
            lps_per in 0usize..3,
            evs_per in 0usize..3,
        ) {
            let snap = random_snapshot(seed, n_shards, lps_per, evs_per);
            let good = encode_snapshot(&snap, &U64Codec);
            let mut s = seed ^ 0xdead_beef;

            // Any single flipped byte breaks the trailing FNV-1a checksum
            // (each round of FNV-1a is a bijection for the remaining
            // suffix, so distinct prefixes cannot re-collide) — or, if the
            // flip lands in the checksum itself, the stored value no
            // longer matches. Either way: a Format error, never a panic.
            let pos = (xorshift(&mut s) % good.len() as u64) as usize;
            let mut flipped = good.clone();
            flipped[pos] ^= 1 + (xorshift(&mut s) % 255) as u8;
            assert!(
                matches!(decode_snapshot::<u64>(&flipped, &U64Codec), Err(ShardError::Format(_))),
                "flip at byte {pos} went undetected"
            );

            // Every strict prefix must be rejected as well.
            let cut = (xorshift(&mut s) % good.len() as u64) as usize;
            assert!(
                matches!(decode_snapshot::<u64>(&good[..cut], &U64Codec), Err(ShardError::Format(_))),
                "truncation to {cut} bytes went undetected"
            );
        }
    }
}
