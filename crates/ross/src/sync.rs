//! Synchronization-primitive alias module — the `union_check` seam.
//!
//! Production builds (`not(union_check)`) re-export the real primitives
//! (std atomics/barrier/mpsc, parking_lot mutex, std threads) plus a
//! `#[repr(transparent)]` pass-through `UnsafeCell`, so this module
//! compiles to exactly the code `ross` used before it existed: zero
//! overhead, zero behavioral change.
//!
//! Under `RUSTFLAGS="--cfg union_check"` every alias switches to the
//! `ross-check` shim layer, which routes each operation through a
//! controlled scheduler with vector-clock race detection (see
//! `crates/check` and DESIGN.md §13). `ross::mailbox`, `ross::parallel`,
//! and the sharded scheduler's loopback transport are written against
//! these aliases and therefore model-checkable without further changes.

#[cfg(union_check)]
pub(crate) use ross_check::cell::UnsafeCell;
#[cfg(union_check)]
pub(crate) use ross_check::sync::atomic;
#[cfg(union_check)]
pub(crate) use ross_check::sync::mpsc;
#[cfg(union_check)]
pub(crate) use ross_check::sync::{Barrier, Mutex};
#[cfg(union_check)]
pub(crate) use ross_check::thread;

#[cfg(not(union_check))]
pub(crate) use parking_lot::Mutex;
#[cfg(not(union_check))]
pub(crate) use std::sync::atomic;
#[cfg(not(union_check))]
pub(crate) use std::sync::mpsc;
#[cfg(not(union_check))]
pub(crate) use std::sync::Barrier;
#[cfg(not(union_check))]
pub(crate) use std::thread;

#[cfg(not(union_check))]
mod cell {
    /// Pass-through `UnsafeCell` with the loom-style `with`/`with_mut`
    /// access API. In production builds the closures receive the raw
    /// pointer directly and everything inlines to a plain field access;
    /// under `union_check` the `ross-check` twin records every access for
    /// race detection.
    #[derive(Debug)]
    #[repr(transparent)]
    pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    // Mirrors the checked twin (and loom): the cell itself is shareable;
    // callers uphold the aliasing discipline.
    unsafe impl<T: Send> Send for UnsafeCell<T> {}
    unsafe impl<T: Send> Sync for UnsafeCell<T> {}

    impl<T> UnsafeCell<T> {
        #[inline(always)]
        pub(crate) fn new(data: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(data))
        }

        #[inline(always)]
        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        #[inline(always)]
        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        #[allow(dead_code)]
        #[inline(always)]
        pub(crate) fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }
}

#[cfg(not(union_check))]
pub(crate) use cell::UnsafeCell;
