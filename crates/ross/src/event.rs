//! Event envelopes and their total order.
//!
//! Every event carries two identifiers:
//!
//! * a **tiebreak** counter that is part of the sending LP's rolled-back
//!   state. After an optimistic rollback the re-executed LP produces the same
//!   tiebreak values, so the (recv, send, src, tiebreak) sort key — and hence
//!   the committed event order — is identical across all three schedulers;
//! * a **uid** drawn from a never-rolled-back per-LP counter, used only to
//!   pair anti-messages with the exact in-flight event they cancel.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Identifies a logical process within a simulation. LP ids are dense
/// indices `0..n_lps`.
pub type LpId = u32;

/// Globally unique event identity (for anti-message matching).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventUid {
    /// Sending LP.
    pub src: LpId,
    /// Value of the sender's non-rolled-back uid counter.
    pub seq: u64,
}

/// A scheduled event: payload plus routing and ordering metadata.
#[derive(Clone, Debug)]
pub struct Envelope<E> {
    /// Virtual time at which the destination LP processes the event.
    pub recv_time: SimTime,
    /// Virtual time at which the source LP sent the event.
    pub send_time: SimTime,
    /// Sending LP (events injected before the run start use the destination).
    pub src: LpId,
    /// Destination LP.
    pub dst: LpId,
    /// Deterministic per-sender counter (rolled back with LP state).
    pub tiebreak: u64,
    /// Unique identity for cancellation.
    pub uid: EventUid,
    /// Model-defined payload.
    pub payload: E,
}

impl<E> Envelope<E> {
    /// The deterministic total-order key. Two committed events never share a
    /// key: an LP's tiebreak counter increments on every send.
    #[inline]
    pub fn key(&self) -> EventKey {
        EventKey {
            recv_time: self.recv_time,
            send_time: self.send_time,
            src: self.src,
            tiebreak: self.tiebreak,
        }
    }
}

/// The comparable portion of an [`Envelope`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct EventKey {
    pub recv_time: SimTime,
    pub send_time: SimTime,
    pub src: LpId,
    pub tiebreak: u64,
}

impl<E> PartialEq for Envelope<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key() && self.uid == other.uid
    }
}
impl<E> Eq for Envelope<E> {}

impl<E> PartialOrd for Envelope<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Envelope<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key()
            .cmp(&other.key())
            // uid only disambiguates transient duplicates during rollback;
            // committed schedules never depend on it.
            .then_with(|| self.uid.seq.cmp(&other.uid.seq))
            .then_with(|| self.uid.src.cmp(&other.uid.src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(recv: u64, send: u64, src: LpId, tb: u64) -> Envelope<()> {
        Envelope {
            recv_time: SimTime(recv),
            send_time: SimTime(send),
            src,
            dst: 0,
            tiebreak: tb,
            uid: EventUid { src, seq: tb },
            payload: (),
        }
    }

    #[test]
    fn order_is_recv_then_send_then_src_then_tiebreak() {
        let a = env(10, 5, 1, 0);
        let b = env(10, 5, 1, 1);
        let c = env(10, 5, 2, 0);
        let d = env(10, 6, 0, 0);
        let e = env(11, 0, 0, 0);
        assert!(a < b && b < c && c < d && d < e);
    }
}
