//! Multi-threaded conservative scheduler with explicit lookahead windows
//! and lock-free cross-partition mailboxes (the CMB null-message idea
//! collapsed into a shared-memory barrier protocol).
//!
//! Differences from [`crate::conservative`] (the YAWNS baseline):
//!
//! * **Topology-aware partitions.** LPs are grouped by a model-supplied
//!   [`crate::Partition`] (e.g. CODES keeps each router with its attached
//!   nodes), then packed onto threads by a deterministic greedy
//!   bin-packer. Partitions need not be contiguous, so LP state is moved
//!   into per-thread vectors and reassembled after the run.
//! * **Lock-free mailboxes.** Cross-partition events travel through
//!   Treiber-stack MPSC mailboxes ([`crate::mailbox`]) instead of
//!   mutex-guarded vectors; a worker drains its mailbox once per round.
//! * **Caller-chosen lookahead.** The synchronization window is
//!   `max(window, engine lookahead)`. A model whose true minimum delay
//!   exceeds the 1 ns it declared (CODES models: link latency floors)
//!   can run with wide windows and few barriers. A window wider than the
//!   model's real minimum delay is caught at run time by a hard
//!   causality check, never silently accepted.
//!
//! ## Protocol
//!
//! Per round, every worker: (1) drains its mailbox into its local queue,
//! (2) publishes its minimum pending timestamp and barriers, (3) computes
//! the global minimum `gmin` — a shared-memory GVT — and processes every
//! local event in `[gmin, gmin + window)`, sending remote events through
//! mailboxes, (4) barriers again so all sends are visible before the
//! next drain. Determinism: within a partition events are processed in
//! total-key order from its [`crate::queue`]; across partitions every event in
//! one window is causally independent (window ≤ true minimum delay); and
//! mailbox arrival order is erased by the heap. For a fixed seed the
//! results are bit-identical to [`Simulation::run_sequential`].

use crate::engine::{seal_outgoing, QueueTelemetry, RunStats, Simulation};
use crate::event::Envelope;
use crate::lp::{Ctx, Lp, LpMeta, Outgoing};
use crate::mailbox::Mailbox;
use crate::partition::Partition;
use crate::queue::{EventQueue, PendingQueue};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{thread, Barrier, Mutex};
use crate::time::{SimDuration, SimTime};
use std::panic::AssertUnwindSafe;

/// Cross-partition events are batched into chunks of this many envelopes
/// before a mailbox push: one allocation + CAS per chunk instead of per
/// event, and the receiver ingests a cache-line-friendly contiguous run.
/// Partial chunks are flushed before the round's closing barrier, so
/// batching never delays delivery across a round boundary.
pub(crate) const MAILBOX_CHUNK: usize = 8;
/// Retained empty chunk vectors per worker (senders pull replacements from
/// here; receivers recycle drained chunks into it), bounding steady-state
/// chunk allocation.
const SPARE_CHUNKS_MAX: usize = 64;

impl<L: Lp> Simulation<L> {
    /// Run with the conservative-parallel scheduler on `n_threads`
    /// workers and a synchronization window of `window` (clamped up to
    /// the engine lookahead), until the queue drains or the next event
    /// exceeds `until`.
    ///
    /// Uses the partition installed with [`Simulation::set_partition`],
    /// or a per-LP partition when none was set. Produces results
    /// bit-identical to [`Simulation::run_sequential`]; panics if
    /// `window` exceeds the model's true minimum send delay (a causality
    /// violation would otherwise corrupt results silently).
    pub fn run_conservative_parallel(
        &mut self,
        n_threads: usize,
        window: SimDuration,
        until: SimTime,
    ) -> RunStats {
        let start = std::time::Instant::now();
        let n_lps = self.lps.len();
        let n_threads = n_threads.max(1).min(n_lps.max(1));
        if n_threads <= 1 {
            return self.run_sequential(until);
        }
        let window = window.max(self.lookahead);
        let assignment = match &self.partition {
            Some(p) => {
                assert_eq!(
                    p.n_lps(),
                    n_lps,
                    "partition covers {} LPs but the simulation has {}",
                    p.n_lps(),
                    n_lps
                );
                p.assign(n_threads)
            }
            None => Partition::per_lp(n_lps).assign(n_threads),
        };
        let owner_of = &assignment.owner_of;
        let local_of = &assignment.local_of;

        // Partitions are not contiguous in general: move LP state and
        // meta into per-thread vectors (reassembled below).
        let mut lps_by_thread: Vec<Vec<L>> = (0..n_threads).map(|_| Vec::new()).collect();
        let mut meta_by_thread: Vec<Vec<LpMeta>> = (0..n_threads).map(|_| Vec::new()).collect();
        for (gid, lp) in std::mem::take(&mut self.lps).into_iter().enumerate() {
            lps_by_thread[owner_of[gid] as usize].push(lp);
        }
        for (gid, meta) in std::mem::take(&mut self.meta).into_iter().enumerate() {
            meta_by_thread[owner_of[gid] as usize].push(meta);
        }

        let qkind = self.queue;
        let mut queues: Vec<PendingQueue<L::Event>> =
            (0..n_threads).map(|_| qkind.new_queue()).collect();
        let mut scratch = Vec::with_capacity(self.pending.len());
        self.pending.drain_to(&mut scratch);
        for env in scratch.drain(..) {
            queues[owner_of[env.dst as usize] as usize].push(env);
        }

        // Mailboxes carry *chunks* of envelopes (see `MAILBOX_CHUNK`), not
        // single events: senders batch, the exactly-once invariant checked
        // under `union_check` then counts chunks.
        let mailboxes: Vec<Mailbox<Vec<Envelope<L::Event>>>> =
            (0..n_threads).map(|_| Mailbox::new()).collect();
        let barrier = Barrier::new(n_threads);
        let mins: Vec<AtomicU64> = (0..n_threads).map(|_| AtomicU64::new(u64::MAX)).collect();
        let committed = AtomicU64::new(0);
        let remote = AtomicU64::new(0);
        let rounds = AtomicU64::new(0);
        let end_clock = AtomicU64::new(0);
        let stall_total = AtomicU64::new(0);
        let queue_ops = AtomicU64::new(0);
        let queue_max_len = AtomicU64::new(0);
        let pool_high_water = AtomicU64::new(0);
        let pool_recycled = AtomicU64::new(0);
        let lookahead = self.lookahead;
        // A worker that detects a causality violation must not panic on
        // the spot — the others would deadlock on the barrier. It records
        // the violation, every worker shuts down at the next round
        // boundary, and the main thread panics with the message.
        let violated = AtomicBool::new(false);
        let violation: Mutex<Option<String>> = Mutex::new(None);
        // Same hazard, harsher trigger: a panic inside an LP's `handle`
        // (model code we do not control) used to unwind straight out of
        // the worker closure while its siblings waited on the round
        // barrier — the run hung forever instead of failing. The panic is
        // caught at the round boundary, parked here, and re-raised on the
        // main thread after every worker has shut down cleanly.
        let poisoned = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        // Telemetry: a few clock reads per round when a recorder or
        // tracer is attached; nothing at all otherwise.
        let telem_on = self.telemetry.is_some();
        let trace_run = self
            .tracer
            .as_ref()
            .map(|tr| (std::sync::Arc::clone(tr), tr.open_run("conservative-parallel", n_threads)));
        let timing = telem_on || trace_run.is_some();
        let thread_records: Mutex<Vec<telemetry::ThreadRecord>> = Mutex::new(Vec::new());
        let live_handles = crate::live::LiveHandles::from_sim(&self.live, n_threads);

        // Per-thread return slots (LPs, meta, leftover events).
        type ThreadResult<L, E> = (Vec<L>, Vec<LpMeta>, Vec<Envelope<E>>);
        type ThreadSlot<L, E> = Mutex<Option<ThreadResult<L, E>>>;
        let results: Vec<ThreadSlot<L, L::Event>> =
            (0..n_threads).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for t in 0..n_threads {
                let mut lps = std::mem::take(&mut lps_by_thread[t]);
                let mut metas = std::mem::take(&mut meta_by_thread[t]);
                let mut queue = std::mem::replace(&mut queues[t], qkind.new_queue());
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                let mins = &mins;
                let committed = &committed;
                let remote = &remote;
                let rounds = &rounds;
                let end_clock = &end_clock;
                let stall_total = &stall_total;
                let queue_ops = &queue_ops;
                let queue_max_len = &queue_max_len;
                let pool_high_water = &pool_high_water;
                let pool_recycled = &pool_recycled;
                let results = &results;
                let violated = &violated;
                let violation = &violation;
                let poisoned = &poisoned;
                let panic_payload = &panic_payload;
                let thread_records = &thread_records;
                let trace_run = &trace_run;
                let live_handles = &live_handles;
                scope.spawn(move || {
                    let mut tbuf = trace_run.as_ref().map(|(tr, run)| tr.buf(*run, t as u32));
                    let mut tap = live_handles.as_ref().map(|h| h.tap(t));
                    let mut live_flushed = (0u64, 0u64); // (committed, remote)
                    let mut inbox: Vec<Vec<Envelope<L::Event>>> = Vec::new();
                    // Per-destination outgoing chunk buffers plus a pool of
                    // spare (empty, capacity-carrying) chunk vectors.
                    let mut chunks: Vec<Vec<Envelope<L::Event>>> =
                        (0..n_threads).map(|_| Vec::new()).collect();
                    let mut spare_chunks: Vec<Vec<Envelope<L::Event>>> = Vec::new();
                    let mut out: Vec<Outgoing<L::Event>> = Vec::with_capacity(8);
                    let mut local_committed = 0u64;
                    let mut local_remote = 0u64;
                    let mut local_rounds = 0u64;
                    let mut local_clock = 0u64;
                    let mut busy_ns = 0u64;
                    let mut blocked_ns = 0u64;
                    let mut stall_ns = 0u64;
                    let mut mailbox_hw = 0u64;
                    loop {
                        // (1) Ingest cross-partition events from the
                        // previous round, one chunk at a time.
                        mailboxes[t].drain_into(&mut inbox);
                        let mut drained = 0u64;
                        for mut chunk in inbox.drain(..) {
                            drained += chunk.len() as u64;
                            for env in chunk.drain(..) {
                                queue.push(env);
                            }
                            if spare_chunks.len() < SPARE_CHUNKS_MAX {
                                spare_chunks.push(chunk);
                            }
                        }
                        mailbox_hw = mailbox_hw.max(drained);
                        // Check the violation flag here, in the quiescent
                        // interval between barriers: it is only ever set
                        // while some thread is processing (between the
                        // two barriers below), so every worker reads the
                        // same frozen value and they all stop together.
                        // Checking after the barrier would race a fast
                        // worker's write against a slow worker's read and
                        // desynchronize the barrier counts (deadlock).
                        if violated.load(Ordering::Acquire) || poisoned.load(Ordering::Acquire) {
                            break;
                        }
                        // (2) Publish the local minimum, agree on gmin.
                        let local_min = queue.peek_time().map(|ts| ts.0).unwrap_or(u64::MAX);
                        mins[t].store(local_min, Ordering::Relaxed);
                        // Barrier waits are timed unconditionally — the
                        // engine-bench stall comparison against the async
                        // scheduler needs them even with telemetry off.
                        let t0 = std::time::Instant::now();
                        barrier.wait();
                        let waited = t0.elapsed().as_nanos() as u64;
                        stall_ns += waited;
                        if timing {
                            blocked_ns += waited;
                            if let Some(b) = tbuf.as_mut() {
                                b.end_span(crate::trace::SpanKind::Barrier, t0);
                            }
                        }
                        let gmin = mins.iter().map(|m| m.load(Ordering::Relaxed)).min().unwrap();
                        if gmin == u64::MAX || gmin > until.0 {
                            break;
                        }
                        local_rounds += 1;
                        let window_end =
                            gmin.saturating_add(window.0).min(until.0.saturating_add(1));

                        // (3) Process local events in [gmin, window_end).
                        // Model code (`Lp::handle`) runs in here; catch
                        // its panics so this worker still reaches barrier
                        // (4) and the round protocol stays in lockstep —
                        // the poison flag shuts everyone down at the next
                        // quiescent interval and the payload resurfaces on
                        // the main thread.
                        let t0 = timing.then(std::time::Instant::now);
                        let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            while let Some(top) = queue.peek() {
                                if top.recv_time.0 >= window_end {
                                    break;
                                }
                                let env = queue.pop().unwrap();
                                // Oracle (checked builds): the shared-memory
                                // GVT is a true lower bound — no worker may
                                // ever commit an event from gmin's past.
                                #[cfg(union_check)]
                                assert!(
                                env.recv_time.0 >= gmin,
                                "GVT oracle violated: processing event at {} ns below gmin {} ns",
                                env.recv_time.0,
                                gmin
                            );
                                local_clock = local_clock.max(env.recv_time.0);
                                let li = local_of[env.dst as usize] as usize;
                                // Hard check (not debug): a cross-partition
                                // event landing in this LP's past means the
                                // window exceeded the model's true minimum
                                // delay.
                                if env.recv_time < metas[li].now {
                                    let mut v = violation.lock();
                                    if v.is_none() {
                                        *v = Some(format!(
                                            "lookahead violation: event for LP {} at {} ns \
                                         arrived after the LP reached {} ns; window {} ns \
                                         exceeds the model's minimum send delay",
                                            env.dst, env.recv_time.0, metas[li].now.0, window.0,
                                        ));
                                    }
                                    violated.store(true, Ordering::Release);
                                    queue.push(env);
                                    break;
                                }
                                metas[li].now = env.recv_time;
                                metas[li].processed += 1;
                                let trace = tbuf.as_mut().map(|b| {
                                    (lps[li].trace_kind(&env), b.event_start(), metas[li].uid_seq)
                                });
                                let mut ctx = Ctx {
                                    now: env.recv_time,
                                    me: env.dst,
                                    lookahead,
                                    out: &mut out,
                                };
                                lps[li].handle(&env, &mut ctx);
                                local_committed += 1;
                                seal_outgoing(
                                    env.dst,
                                    env.recv_time,
                                    &mut metas[li],
                                    &mut out,
                                    |new| {
                                        let o = owner_of[new.dst as usize] as usize;
                                        if o == t {
                                            queue.push(new);
                                        } else {
                                            local_remote += 1;
                                            let c = &mut chunks[o];
                                            c.push(new);
                                            if c.len() >= MAILBOX_CHUNK {
                                                let full = std::mem::replace(
                                                    c,
                                                    spare_chunks.pop().unwrap_or_default(),
                                                );
                                                mailboxes[o].push(full);
                                            }
                                        }
                                    },
                                );
                                if let (Some(b), Some((kind, t0, uid_lo))) = (tbuf.as_mut(), trace)
                                {
                                    let children = (metas[li].uid_seq - uid_lo) as u32;
                                    b.record(&env, uid_lo, children, kind, t0);
                                }
                            }
                        }));
                        if let Err(payload) = step {
                            let mut slot = panic_payload.lock();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            poisoned.store(true, Ordering::Release);
                        }
                        if let Some(t0) = t0 {
                            busy_ns += t0.elapsed().as_nanos() as u64;
                        }
                        // Live flush once per window: committed/remote
                        // deltas, window floor (leader), local queue depth.
                        if let Some(tp) = tap.as_mut() {
                            tp.commit(local_committed - live_flushed.0);
                            tp.remote(local_remote - live_flushed.1);
                            live_flushed = (local_committed, local_remote);
                            if t == 0 {
                                tp.round();
                                tp.gvt(gmin);
                            }
                            tp.queue_depth(queue.len() as u64);
                            tp.flush();
                        }
                        // Flush partial chunks — unconditionally, even on a
                        // violation or model panic, so no buffered event is
                        // ever stranded in this worker's locals.
                        for (o, c) in chunks.iter_mut().enumerate() {
                            if !c.is_empty() {
                                let full =
                                    std::mem::replace(c, spare_chunks.pop().unwrap_or_default());
                                mailboxes[o].push(full);
                            }
                        }
                        // (4) All sends of this round must be visible
                        // before anyone's next mailbox drain.
                        let t0 = std::time::Instant::now();
                        barrier.wait();
                        let waited = t0.elapsed().as_nanos() as u64;
                        stall_ns += waited;
                        if timing {
                            blocked_ns += waited;
                            if let Some(b) = tbuf.as_mut() {
                                b.end_span(crate::trace::SpanKind::Barrier, t0);
                            }
                        }
                    }
                    if let Some(tp) = tap.as_mut() {
                        tp.commit(local_committed - live_flushed.0);
                        tp.remote(local_remote - live_flushed.1);
                        tp.pool_high_water(queue.pool_stats().high_water);
                        tp.flush();
                    }
                    committed.fetch_add(local_committed, Ordering::Relaxed);
                    remote.fetch_add(local_remote, Ordering::Relaxed);
                    rounds.fetch_max(local_rounds, Ordering::Relaxed);
                    end_clock.fetch_max(local_clock, Ordering::Relaxed);
                    stall_total.fetch_add(stall_ns, Ordering::Relaxed);
                    if let (Some((tr, _)), Some(b)) = (trace_run.as_ref(), tbuf) {
                        tr.submit(b);
                    }
                    if telem_on {
                        thread_records.lock().push(telemetry::ThreadRecord {
                            thread: t,
                            events: local_committed,
                            busy_ns,
                            blocked_ns,
                            idle_ns: 0,
                            mailbox_high_water: mailbox_hw,
                        });
                    }
                    queue_ops.fetch_add(queue.ops(), Ordering::Relaxed);
                    queue_max_len.fetch_max(queue.max_len(), Ordering::Relaxed);
                    let ps = queue.pool_stats();
                    pool_high_water.fetch_max(ps.high_water, Ordering::Relaxed);
                    pool_recycled.fetch_add(ps.recycled, Ordering::Relaxed);
                    let mut leftover: Vec<Envelope<L::Event>> = Vec::new();
                    queue.drain_to(&mut leftover);
                    *results[t].lock() = Some((lps, metas, leftover));
                });
            }
        });

        // A worker caught a model panic: every worker has shut down at a
        // round boundary (no barrier left hanging), so re-raise the
        // original payload here. LP state is torn mid-event — do not
        // bother reassembling it.
        if let Some(payload) = panic_payload.lock().take() {
            std::panic::resume_unwind(payload);
        }

        // Reassemble LP state in original global order and reabsorb
        // unprocessed events (recv_time > until) for a later run.
        let mut lp_slots: Vec<Option<L>> = (0..n_lps).map(|_| None).collect();
        let mut meta_slots: Vec<Option<LpMeta>> = (0..n_lps).map(|_| None).collect();
        for (t, slot) in results.iter().enumerate() {
            let (lps, metas, leftover) =
                slot.lock().take().expect("worker thread did not report results");
            for ((&gid, lp), meta) in assignment.locals[t].iter().zip(lps).zip(metas) {
                lp_slots[gid as usize] = Some(lp);
                meta_slots[gid as usize] = Some(meta);
            }
            for env in leftover {
                self.pending.push(env);
            }
        }
        self.lps = lp_slots.into_iter().map(|s| s.expect("missing LP")).collect();
        self.meta = meta_slots.into_iter().map(|s| s.expect("missing meta")).collect();
        // Mailboxes are drained at the top of every round and the final
        // round performs no sends after its last drain, but be defensive.
        let mut stray: Vec<Vec<Envelope<L::Event>>> = Vec::new();
        for mb in &mailboxes {
            mb.drain_into(&mut stray);
        }
        for chunk in stray {
            for env in chunk {
                self.pending.push(env);
            }
        }
        if let Some(msg) = violation.lock().take() {
            panic!("{msg}");
        }

        let stats = RunStats {
            committed: committed.load(Ordering::Relaxed),
            remote_events: remote.load(Ordering::Relaxed),
            rounds: rounds.load(Ordering::Relaxed),
            horizon_stall_ns: stall_total.load(Ordering::Relaxed),
            end_time: SimTime(end_clock.load(Ordering::Relaxed)),
            wall_seconds: start.elapsed().as_secs_f64(),
            ..Default::default()
        };
        if let Some((tr, run)) = trace_run {
            tr.close_run(run, (stats.wall_seconds * 1e9) as u64, stats.end_time.as_ns());
        }
        crate::engine::emit_sched_telemetry(
            self.telemetry.as_deref(),
            "conservative-parallel",
            n_threads,
            &stats,
            0,
            QueueTelemetry {
                kind: qkind,
                ops: queue_ops.load(Ordering::Relaxed),
                max_len: queue_max_len.load(Ordering::Relaxed),
                pool: crate::pool::PoolStats {
                    high_water: pool_high_water.load(Ordering::Relaxed),
                    recycled: pool_recycled.load(Ordering::Relaxed),
                },
            },
            thread_records.into_inner(),
        );
        stats
    }

    /// Like [`run_conservative_parallel`](Self::run_conservative_parallel)
    /// with the window equal to the engine lookahead (always safe).
    pub fn run_conservative_parallel_default(
        &mut self,
        n_threads: usize,
        until: SimTime,
    ) -> RunStats {
        self.run_conservative_parallel(n_threads, SimDuration::from_ns(0), until)
    }
}

// These tests drive real multi-thread runs; under `union_check` the
// shimmed primitives require a model-checking context, so they only
// build in production cfg (the checked-build twin lives in
// `tests/union_check_oracle.rs`).
#[cfg(all(test, not(union_check)))]
mod tests {
    use super::*;
    use crate::Scheduler;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[derive(Clone)]
    struct Phold {
        rng: SmallRng,
        n_lps: u32,
        hits: u64,
        checksum: u64,
        horizon: SimTime,
    }

    impl Lp for Phold {
        type Event = u64;
        fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
            self.hits += 1;
            self.checksum = self
                .checksum
                .wrapping_mul(6364136223846793005)
                .wrapping_add(ev.payload ^ ev.recv_time.as_ns());
            if ctx.now() < self.horizon {
                let dst = self.rng.gen_range(0..self.n_lps);
                let delay = SimDuration::from_ns(self.rng.gen_range(50..500));
                ctx.send(dst, delay, self.checksum);
            }
        }
    }

    /// PHOLD whose minimum send delay (50 ns) is far above the declared
    /// engine lookahead (1 ns) — the case wide windows exist for.
    fn phold_sim(n_lps: u32, seeds: u64) -> Simulation<Phold> {
        let lps = (0..n_lps)
            .map(|i| Phold {
                rng: SmallRng::seed_from_u64(seeds + i as u64),
                n_lps,
                hits: 0,
                checksum: 0,
                horizon: SimTime::from_us(100),
            })
            .collect();
        let mut sim = Simulation::new(lps, SimDuration::from_ns(1));
        for i in 0..n_lps {
            sim.schedule(i, SimTime::from_ns(i as u64 % 7), i as u64);
        }
        sim
    }

    fn fingerprint(sim: &Simulation<Phold>) -> Vec<(u64, u64)> {
        sim.lps().iter().map(|l| (l.hits, l.checksum)).collect()
    }

    #[test]
    fn matches_sequential_bit_for_bit() {
        let mut a = phold_sim(16, 21);
        let sa = a.run_sequential(SimTime::MAX);
        for threads in [2usize, 3, 4] {
            // Windows up to the model's true minimum delay (50 ns).
            for window_ns in [1u64, 25, 50] {
                let mut b = phold_sim(16, 21);
                let sb = b.run_conservative_parallel(
                    threads,
                    SimDuration::from_ns(window_ns),
                    SimTime::MAX,
                );
                assert_eq!(sa.committed, sb.committed, "t={threads} w={window_ns}");
                assert_eq!(fingerprint(&a), fingerprint(&b), "t={threads} w={window_ns}");
            }
        }
    }

    #[test]
    fn wide_windows_use_fewer_rounds() {
        let mut narrow = phold_sim(16, 5);
        let mut wide = phold_sim(16, 5);
        let sn = narrow.run_conservative_parallel(2, SimDuration::from_ns(1), SimTime::MAX);
        let sw = wide.run_conservative_parallel(2, SimDuration::from_ns(50), SimTime::MAX);
        assert_eq!(fingerprint(&narrow), fingerprint(&wide));
        assert!(
            sw.rounds < sn.rounds,
            "50 ns windows ({} rounds) should beat 1 ns windows ({} rounds)",
            sw.rounds,
            sn.rounds
        );
    }

    #[test]
    fn custom_partition_preserves_results() {
        let mut a = phold_sim(12, 9);
        let sa = a.run_sequential(SimTime::MAX);
        let mut b = phold_sim(12, 9);
        // Deliberately lopsided, non-contiguous blocks.
        b.set_partition(Partition::from_blocks(vec![5, 1, 5, 1, 5, 1, 9, 9, 5, 1, 9, 5]));
        let sb = b.run_conservative_parallel(3, SimDuration::from_ns(50), SimTime::MAX);
        assert_eq!(sa.committed, sb.committed);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn until_bound_pauses_and_resumes() {
        let mut a = phold_sim(8, 13);
        let mut b = phold_sim(8, 13);
        a.run_sequential(SimTime::MAX);
        b.run_conservative_parallel(3, SimDuration::from_ns(50), SimTime::from_us(40));
        assert!(b.pending_events() > 0);
        // Finish with a different scheduler — state must be seamless.
        b.run_sequential(SimTime::MAX);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn counts_remote_events() {
        let mut sim = phold_sim(16, 2);
        let stats = sim.run_conservative_parallel(4, SimDuration::from_ns(50), SimTime::MAX);
        assert!(stats.remote_events > 0, "PHOLD traffic must cross partitions");
        assert!(stats.remote_events <= stats.committed + sim.pending_events() as u64);
    }

    #[test]
    fn scheduler_enum_dispatches_parallel() {
        let mut a = phold_sim(8, 31);
        let sa = Scheduler::Sequential.run(&mut a, SimTime::MAX);
        let mut b = phold_sim(8, 31);
        let sched =
            Scheduler::ConservativeParallel { threads: 4, lookahead: SimDuration::from_ns(50) };
        let sb = sched.run(&mut b, SimTime::MAX);
        assert_eq!(sa.committed, sb.committed);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// Ring-forwarding LP that panics once simulated time passes `boom_at`.
    #[derive(Clone)]
    struct PanickyRing {
        n_lps: u32,
        boom_at: SimTime,
        horizon: SimTime,
    }

    impl Lp for PanickyRing {
        type Event = u64;
        fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
            if ev.recv_time >= self.boom_at {
                panic!("model LP blew up at {} ns", ev.recv_time.0);
            }
            if ctx.now() < self.horizon {
                let dst = (ev.dst + 1) % self.n_lps;
                ctx.send(dst, SimDuration::from_ns(50), ev.payload + 1);
            }
        }
    }

    /// Regression for the worker-panic → barrier-deadlock hazard: a panic
    /// in model code must resurface on the caller (original payload, so
    /// `expected` below matches) instead of leaving the sibling workers
    /// parked on the round barrier forever.
    #[test]
    #[should_panic(expected = "model LP blew up")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let n_lps = 8u32;
        let lps = (0..n_lps)
            .map(|_| PanickyRing {
                n_lps,
                boom_at: SimTime::from_us(10),
                horizon: SimTime::from_us(100),
            })
            .collect();
        let mut sim = Simulation::new(lps, SimDuration::from_ns(1));
        for i in 0..n_lps {
            sim.schedule(i, SimTime::from_ns(i as u64), i as u64);
        }
        sim.run_conservative_parallel(4, SimDuration::from_ns(50), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn oversized_window_is_caught() {
        // Window far beyond the model's 50 ns minimum delay: the hard
        // causality check must fire rather than silently corrupt.
        let mut sim = phold_sim(16, 77);
        sim.run_conservative_parallel(4, SimDuration::from_us(10), SimTime::MAX);
    }
}
