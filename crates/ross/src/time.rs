//! Simulation time.
//!
//! ROSS uses `double` virtual time; we use unsigned 64-bit **nanoseconds**
//! instead so that event ordering is exact and bit-identical across the
//! sequential, conservative, and optimistic schedulers. At 1 ns resolution a
//! `u64` covers ~584 years of virtual time, far beyond any network simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The beginning of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The end of virtual time; used as "run until the event queue drains".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since time zero.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time as floating-point microseconds (for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time as floating-point milliseconds (for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference between two times.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Duration in nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Duration as floating-point microseconds (for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The serialization delay of `bytes` over a link of `gib_per_s` GiB/s,
    /// rounded up to whole nanoseconds (never zero for nonzero payloads).
    pub fn transfer_time(bytes: u64, gib_per_s: f64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let bytes_per_ns = gib_per_s * (1u64 << 30) as f64 / 1e9;
        let ns = (bytes as f64 / bytes_per_ns).ceil() as u64;
        SimDuration(ns.max(1))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics on negative spans in debug builds; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(3), SimTime::from_ns(3_000));
        assert_eq!(SimTime::from_ms(2), SimTime::from_us(2_000));
        assert_eq!(SimDuration::from_ms(1).as_ns(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100) + SimDuration::from_ns(50);
        assert_eq!(t.as_ns(), 150);
        assert_eq!((t - SimTime::from_ns(100)).as_ns(), 50);
        assert_eq!(SimTime::from_ns(5).saturating_since(SimTime::from_ns(9)), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 16 GiB/s terminal link: 1 GiB should take ~1/16 s = 62.5 ms.
        let d = SimDuration::transfer_time(1 << 30, 16.0);
        assert!((d.as_ns() as f64 - 62.5e6).abs() < 1e3, "{d:?}");
        // Zero bytes is free, tiny payloads are never free.
        assert_eq!(SimDuration::transfer_time(0, 16.0), SimDuration::ZERO);
        assert!(SimDuration::transfer_time(1, 1000.0).as_ns() >= 1);
    }
}
