//! The logical-process abstraction and the scheduling context handed to it.

use crate::event::{Envelope, LpId};
use crate::time::{SimDuration, SimTime};

/// A logical process (LP): an independently evolving piece of model state.
///
/// All LPs in one simulation share a single concrete type — models compose
/// heterogeneous LPs with an enum. `handle` is the only entry point; an LP
/// must never touch state outside itself except through [`Ctx::send`].
///
/// For optimistic execution the LP type must also be `Clone` (state saving)
/// — see [`crate::optimistic`].
pub trait Lp: Send + 'static {
    /// Model-defined event payload shared by every LP in the simulation.
    type Event: Clone + Send + 'static;

    /// Process one event. Absolutely no side effects outside `self` and
    /// `ctx` are allowed: the optimistic scheduler may run this
    /// speculatively and roll it back.
    fn handle(&mut self, ev: &Envelope<Self::Event>, ctx: &mut Ctx<'_, Self::Event>);

    /// Classify `ev` for the causal tracer ([`crate::trace`]). Kind tags
    /// index into the names staged with
    /// [`crate::Tracer::stage_kind_names`]; models use them to attribute
    /// events to an application, a phase, compute vs. communication, and
    /// so on. Only called when a tracer is attached; must not mutate
    /// observable state. Defaults to tag 0.
    fn trace_kind(&self, _ev: &Envelope<Self::Event>) -> u16 {
        0
    }
}

/// Buffered outgoing send produced during one `handle` call.
pub(crate) struct Outgoing<E> {
    pub dst: LpId,
    pub delay: SimDuration,
    pub payload: E,
}

/// Scheduling context: the LP's window into the engine during one event.
///
/// Sends are buffered and turned into envelopes by the scheduler after the
/// handler returns, which keeps envelope bookkeeping (tiebreaks, uids,
/// rollback logs) out of model code.
pub struct Ctx<'a, E> {
    pub(crate) now: SimTime,
    pub(crate) me: LpId,
    pub(crate) lookahead: SimDuration,
    pub(crate) out: &'a mut Vec<Outgoing<E>>,
}

impl<'a, E> Ctx<'a, E> {
    /// Current virtual time (the `recv_time` of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the LP handling the event.
    #[inline]
    pub fn me(&self) -> LpId {
        self.me
    }

    /// Schedule `payload` for LP `dst` at `now + delay`.
    ///
    /// `delay` must be at least the engine lookahead declared at
    /// construction — the conservative scheduler's correctness depends on
    /// it, and the requirement is enforced uniformly so a model validated
    /// sequentially cannot silently break under parallel execution.
    #[inline]
    pub fn send(&mut self, dst: LpId, delay: SimDuration, payload: E) {
        debug_assert!(
            delay >= self.lookahead,
            "send delay {delay:?} below engine lookahead {:?}",
            self.lookahead
        );
        self.out.push(Outgoing { dst, delay, payload });
    }

    /// Schedule an event for this LP itself (a wake-up).
    #[inline]
    pub fn send_self(&mut self, delay: SimDuration, payload: E) {
        let me = self.me;
        self.send(me, delay, payload);
    }
}

/// Per-LP engine-side bookkeeping common to all schedulers.
#[derive(Clone)]
pub(crate) struct LpMeta {
    /// Deterministic send counter — snapshotted/rolled back with LP state.
    pub tiebreak: u64,
    /// Unique id counter — never rolled back.
    pub uid_seq: u64,
    /// Last processed event time (causality check).
    pub now: SimTime,
    /// Number of events this LP has processed (committed view for
    /// sequential/conservative; speculative view for optimistic).
    pub processed: u64,
}

impl LpMeta {
    pub(crate) fn new() -> Self {
        LpMeta { tiebreak: 0, uid_seq: 0, now: SimTime::ZERO, processed: 0 }
    }
}
