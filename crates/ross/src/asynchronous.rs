//! Barrier-free asynchronous conservative scheduler with work stealing.
//!
//! Where [`crate::parallel`] synchronizes every worker twice per round on a
//! [`Barrier`](crate::sync::Barrier), this scheduler has **no barriers at
//! all**: each worker continuously publishes a monotone **safe horizon** —
//! a lower bound on the receive time of any event it will ever push to a
//! peer in the future — and processes its own pending events strictly
//! below the minimum of its peers' horizons. Mailboxes are drained
//! opportunistically at the top of every scheduling iteration instead of
//! at round edges, so a fast worker never waits for a slow one unless
//! true event dependencies force it to.
//!
//! ## The horizon protocol
//!
//! Worker `t` owns an atomic `clock[t]`. The invariant (the "promise"):
//! every envelope `t` pushes to a peer mailbox *after* `clock[t]` held
//! value `c` has `recv_time >= c`. Peers may therefore process events
//! with `recv_time < B_t = min(clock[k] for k != t)` knowing no earlier
//! arrival can appear. Each iteration runs in a load-bearing order:
//!
//! 1. read peer clocks (computing the bound `B`),
//! 2. drain the mailbox,
//! 3. process queued events with `recv_time < B`,
//! 4. flush outgoing chunks,
//! 5. publish `clock[t] = min(queue_head, B) + L` (fetch_max).
//!
//! Draining *after* the clock read guarantees any event still undrained
//! at publish time was pushed after the read, hence has
//! `recv_time >= clock[sender] >= B` — so the published value
//! `min(head, B) + L` never exceeds a future send's receive time: sends
//! come from events at `recv >= min(head, B)` and carry at least the
//! lookahead `L` of delay. Publishing with `fetch_max` keeps the horizon
//! monotone; the checked build asserts the computed value never regresses
//! (the horizon-monotonicity oracle).
//!
//! ## Termination (Mattern counters, no token waves)
//!
//! Monotone counters `S` (envelopes pushed to any mailbox) and `R`
//! (envelopes drained) replace the sharded token fence. Workers publish
//! their raw queue minimum *lowering it before counting the arrivals that
//! caused it* (fetch_min before the `R` add) and *raising it only after
//! counting the sends that emptied it* (`S` adds before the store). The
//! leader (worker 0) then detects completion by reading `R`, then every
//! published minimum, then `S` — in that order. `S == R` across the read
//! span proves no envelope was in flight, and the minimums prove no
//! worker holds unprocessed work at or below `until`.
//!
//! ## Work stealing
//!
//! An idle worker posts a steal request against the most backlogged peer
//! and **caps its own horizon at the victim's published clock** while it
//! waits. The victim freezes its horizon too, and hands off the tail half
//! of its resident LPs — state, meta, and pending events — only once
//! (a) every peer horizon has caught up to its own frozen publish, and
//! (b) its queue head has advanced to within one lookahead of the thief's
//! capped clock. Together these give the two handoff invariants: the
//! batch's earliest event is within `L` of the thief's horizon (so the
//! thief's first sends from stolen events cannot undercut its own
//! promise), and the victim's horizon is at or below the bound it reads
//! each iteration (so it can keep **relaying** arrivals for migrated LPs
//! — routing stays static — while capping its publishes at that bound,
//! which forwards cannot undercut). A request the victim cannot serve is
//! declined through a counter so the thief unfreezes. At most one victim
//! is allowed per run, which keeps the capped-horizon wait graph acyclic
//! (see DESIGN.md §15). The handoff travels through the `crate::sync`
//! seam, so `ross-check` explores it like any other synchronization.
//!
//! ## Idle workers park — they do not spin
//!
//! A worker with nothing processable publishes its horizon one last time,
//! sets a `parked` flag, re-checks every wake condition, and blocks on an
//! mpsc wakeup channel. Wakers (mailbox pushers, horizon raisers, the
//! terminating leader) swap the flag and send a token only when it was
//! set. The flag-then-recheck / change-then-swap pairing is the classic
//! Dekker handshake: whichever side acts second sees the other. Blocking
//! instead of spinning is what keeps `--cfg union_check` exploration
//! finite — a parked thread is simply not enabled until a send lands.

use crate::engine::{seal_outgoing, QueueTelemetry, RunStats, Simulation};
use crate::event::Envelope;
use crate::lp::{Ctx, Lp, LpMeta, Outgoing};
use crate::mailbox::Mailbox;
use crate::parallel::MAILBOX_CHUNK;
use crate::partition::Partition;
use crate::queue::{EventQueue, PendingQueue};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{mpsc, thread, Mutex};
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;

/// Retained empty chunk vectors per worker (see [`crate::parallel`]).
const SPARE_CHUNKS_MAX: usize = 64;
/// A victim must have at least this many queued events before a steal
/// request is posted against it.
const STEAL_MIN_QLEN: u64 = 8;
/// Bounded spin before parking on multi-core hosts (production only; the
/// checked build parks immediately so exploration stays finite, and a
/// single-core host parks immediately too — spinning there only delays
/// the peer whose horizon raise we are waiting for).
#[cfg(not(union_check))]
fn idle_spin_budget() -> u32 {
    match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 64,
        _ => 0,
    }
}
#[cfg(union_check)]
fn idle_spin_budget() -> u32 {
    0
}

/// An LP block in flight from a victim to a thief: state, meta, and every
/// pending event the victim held for it. Envelope conservation: the
/// events are counted into `S` at push and into `R` at install.
struct Migration<L: Lp> {
    gids: Vec<u32>,
    lps: Vec<L>,
    metas: Vec<LpMeta>,
    events: Vec<Envelope<L::Event>>,
}

impl<L: Lp> Simulation<L> {
    /// Run with the asynchronous conservative scheduler on `n_threads`
    /// workers with protocol lookahead `lookahead` (clamped up to the
    /// engine lookahead), until the queue drains or the next event
    /// exceeds `until`.
    ///
    /// Produces results bit-identical to
    /// [`Simulation::run_sequential`]; a `lookahead` above the model's
    /// true minimum send delay is caught by the same hard causality
    /// check as [`Simulation::run_conservative_parallel`].
    pub fn run_conservative_async(
        &mut self,
        n_threads: usize,
        lookahead: SimDuration,
        until: SimTime,
    ) -> RunStats {
        let start = std::time::Instant::now();
        let n_lps = self.lps.len();
        let n_threads = n_threads.max(1).min(n_lps.max(1));
        if n_threads <= 1 {
            return self.run_sequential(until);
        }
        let la = lookahead.max(self.lookahead).as_ns().max(1);
        let assignment = match &self.partition {
            Some(p) => {
                assert_eq!(
                    p.n_lps(),
                    n_lps,
                    "partition covers {} LPs but the simulation has {}",
                    p.n_lps(),
                    n_lps
                );
                p.assign(n_threads)
            }
            None => Partition::per_lp(n_lps).assign(n_threads),
        };
        let owner_of = &assignment.owner_of;
        let local_of = &assignment.local_of;

        // LP state moves into per-thread vectors as in `crate::parallel`,
        // but in `Option` slots: migration takes an LP out of its home
        // worker's slot mid-run.
        let mut lps_by_thread: Vec<Vec<Option<L>>> = (0..n_threads).map(|_| Vec::new()).collect();
        let mut meta_by_thread: Vec<Vec<LpMeta>> = (0..n_threads).map(|_| Vec::new()).collect();
        for (gid, lp) in std::mem::take(&mut self.lps).into_iter().enumerate() {
            lps_by_thread[owner_of[gid] as usize].push(Some(lp));
        }
        for (gid, meta) in std::mem::take(&mut self.meta).into_iter().enumerate() {
            meta_by_thread[owner_of[gid] as usize].push(meta);
        }

        let qkind = self.queue;
        let mut queues: Vec<PendingQueue<L::Event>> =
            (0..n_threads).map(|_| qkind.new_queue()).collect();
        let mut scratch = Vec::with_capacity(self.pending.len());
        self.pending.drain_to(&mut scratch);
        for env in scratch.drain(..) {
            queues[owner_of[env.dst as usize] as usize].push(env);
        }

        // Initial horizons: every event anywhere sits at or above the
        // global pending minimum, and every send adds at least `la` of
        // delay — so `global_min + la` is a sound first promise for every
        // worker, and the fixed point the publish rule grows from. (A
        // per-worker `head + la` would be unsound: a peer's earlier event
        // can arrive below this worker's own head.)
        let global_min = queues
            .iter_mut()
            .filter_map(|q| q.peek_time())
            .map(|ts| ts.0)
            .min()
            .unwrap_or(u64::MAX);
        let init_clock = global_min.saturating_add(la);

        let mailboxes: Vec<Mailbox<Vec<Envelope<L::Event>>>> =
            (0..n_threads).map(|_| Mailbox::new()).collect();
        let migrations: Vec<Mailbox<Migration<L>>> =
            (0..n_threads).map(|_| Mailbox::new()).collect();
        let clocks: Vec<AtomicU64> = (0..n_threads).map(|_| AtomicU64::new(init_clock)).collect();
        let raw_mins: Vec<AtomicU64> = queues
            .iter_mut()
            .map(|q| AtomicU64::new(q.peek_time().map(|ts| ts.0).unwrap_or(u64::MAX)))
            .collect();
        let qlens: Vec<AtomicU64> = queues.iter().map(|q| AtomicU64::new(q.len() as u64)).collect();
        let parked: Vec<AtomicBool> = (0..n_threads).map(|_| AtomicBool::new(false)).collect();
        // steal_req[v] = 0 (none) or thief_id + 1; steal_declines[t]
        // counts refusals addressed to thief t.
        let steal_req: Vec<AtomicU64> = (0..n_threads).map(|_| AtomicU64::new(0)).collect();
        let steal_declines: Vec<AtomicU64> = (0..n_threads).map(|_| AtomicU64::new(0)).collect();
        let active_victim = AtomicU64::new(0);
        let sent = AtomicU64::new(0);
        let received = AtomicU64::new(0);
        let done = AtomicBool::new(false);

        let committed = AtomicU64::new(0);
        let remote = AtomicU64::new(0);
        let rounds = AtomicU64::new(0);
        let end_clock = AtomicU64::new(0);
        let steals_total = AtomicU64::new(0);
        let stall_total = AtomicU64::new(0);
        let lag_max = AtomicU64::new(0);
        let queue_ops = AtomicU64::new(0);
        let queue_max_len = AtomicU64::new(0);
        let pool_high_water = AtomicU64::new(0);
        let pool_recycled = AtomicU64::new(0);
        let engine_lookahead = self.lookahead;
        // Violation / model-panic protocols as in `crate::parallel`, minus
        // the round-boundary rendezvous: each worker independently breaks
        // when it observes a flag, and flag setters wake every parked peer.
        let violated = AtomicBool::new(false);
        let violation: Mutex<Option<String>> = Mutex::new(None);
        let poisoned = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let telem_on = self.telemetry.is_some();
        let trace_run = self
            .tracer
            .as_ref()
            .map(|tr| (std::sync::Arc::clone(tr), tr.open_run("conservative-async", n_threads)));
        let timing = telem_on || trace_run.is_some();
        let thread_records: Mutex<Vec<telemetry::ThreadRecord>> = Mutex::new(Vec::new());
        let live_handles = crate::live::LiveHandles::from_sim(&self.live, n_threads);

        // Wakeup channels: worker t owns rx[t]; every worker holds a clone
        // of every tx.
        let mut txs = Vec::with_capacity(n_threads);
        let mut rxs = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let (tx, rx) = mpsc::channel::<()>();
            txs.push(tx);
            rxs.push(Some(rx));
        }

        // Per-thread return slots: every hosted LP tagged with its global
        // id (migration makes the home assignment insufficient), plus
        // leftover events.
        type ThreadResult<L, E> = (Vec<(u32, L, LpMeta)>, Vec<Envelope<E>>);
        type ThreadSlot<L, E> = Mutex<Option<ThreadResult<L, E>>>;
        let results: Vec<ThreadSlot<L, L::Event>> =
            (0..n_threads).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for t in 0..n_threads {
                let mut lps = std::mem::take(&mut lps_by_thread[t]);
                let mut metas = std::mem::take(&mut meta_by_thread[t]);
                let mut queue = std::mem::replace(&mut queues[t], qkind.new_queue());
                let rx = rxs[t].take().expect("wake receiver");
                let wake_tx: Vec<mpsc::Sender<()>> = txs.to_vec();
                let my_locals = &assignment.locals[t];
                let (mailboxes, migrations) = (&mailboxes, &migrations);
                let (clocks, raw_mins, qlens, parked) = (&clocks, &raw_mins, &qlens, &parked);
                let (steal_req, steal_declines, active_victim) =
                    (&steal_req, &steal_declines, &active_victim);
                let (sent, received, done) = (&sent, &received, &done);
                let (committed, remote, rounds, end_clock) =
                    (&committed, &remote, &rounds, &end_clock);
                let (steals_total, stall_total, lag_max) = (&steals_total, &stall_total, &lag_max);
                let (queue_ops, queue_max_len) = (&queue_ops, &queue_max_len);
                let (pool_high_water, pool_recycled) = (&pool_high_water, &pool_recycled);
                let (violated, violation) = (&violated, &violation);
                let (poisoned, panic_payload) = (&poisoned, &panic_payload);
                let results = &results;
                let thread_records = &thread_records;
                let trace_run = &trace_run;
                let live_handles = &live_handles;
                scope.spawn(move || {
                    let leader = t == 0;
                    let mut tbuf = trace_run.as_ref().map(|(tr, run)| tr.buf(*run, t as u32));
                    let mut tap = live_handles.as_ref().map(|h| h.tap(t));
                    let mut live_flushed = (0u64, 0u64); // (committed, remote)
                                                         // Dekker wake: the parker stores its flag and then
                                                         // re-checks; we make our change, then swap the flag —
                                                         // whichever side acted second sees the other.
                                                         // The load before the swap keeps the running-peer case
                                                         // (flag clear) free of an RMW; the handshake only needs
                                                         // the swap when the flag reads set.
                    let wake = |k: usize| {
                        if parked[k].load(Ordering::SeqCst)
                            && parked[k].swap(false, Ordering::SeqCst)
                        {
                            let _ = wake_tx[k].send(());
                        }
                    };
                    let wake_all = |me: usize| {
                        for k in 0..n_threads {
                            if k != me
                                && parked[k].load(Ordering::SeqCst)
                                && parked[k].swap(false, Ordering::SeqCst)
                            {
                                let _ = wake_tx[k].send(());
                            }
                        }
                    };
                    let mut inbox: Vec<Vec<Envelope<L::Event>>> = Vec::new();
                    let mut mig_inbox: Vec<Migration<L>> = Vec::new();
                    let mut chunks: Vec<Vec<Envelope<L::Event>>> =
                        (0..n_threads).map(|_| Vec::new()).collect();
                    // Mailbox wakes owed to each peer, delivered at the
                    // step-7 flush. A pushed envelope is never processable
                    // before this worker's next horizon raise (its receive
                    // time is at or above the published clock, hence at or
                    // above the peer's bound), so waking mid-burst on every
                    // full chunk only preempts the producer — one deferred
                    // wake per iteration carries the same information. The
                    // push-then-wake pairing the Dekker handshake needs is
                    // preserved: the flush runs before this worker can
                    // reach its own park.
                    let mut owed_wake: Vec<bool> = vec![false; n_threads];
                    let mut spare_chunks: Vec<Vec<Envelope<L::Event>>> = Vec::new();
                    let mut out: Vec<Outgoing<L::Event>> = Vec::with_capacity(8);
                    // Forwards that outran their migration batch wait here
                    // until the block they belong to is installed.
                    let mut stash: Vec<Envelope<L::Event>> = Vec::new();
                    // gid -> thief for blocks migrated away (I relay).
                    let mut away: HashMap<u32, usize> = HashMap::new();
                    // gid -> index into xlps/xmetas for blocks hosted here.
                    let mut hosted: HashMap<u32, usize> = HashMap::new();
                    let mut xgids: Vec<u32> = Vec::new();
                    let mut xlps: Vec<Option<L>> = Vec::new();
                    let mut xmetas: Vec<LpMeta> = Vec::new();
                    let mut own_resident = lps.len();
                    // Fresh sends accumulate S here and flush to the shared
                    // counter immediately before any mailbox push (and at
                    // the end of every processing burst), so an envelope is
                    // never R-countable before it is S-counted. Flushing
                    // early only over-approximates in-flight mail, which
                    // merely delays termination detection — the safe
                    // direction. Flush-time bulk adds of whole chunks would
                    // instead double-count relayed envelopes (chunks mix
                    // both kinds), deadlocking termination.
                    let mut s_pending = 0u64;
                    // Victim side: a granted request freezes the horizon
                    // until the handoff invariants hold. Thief side:
                    // `awaiting` caps the horizon at the victim's clock.
                    let mut migrate_pending = false;
                    let mut awaiting: Option<(usize, u64)> = None;
                    let mut published = init_clock;
                    // Shadow copies of this worker's own raw_mins / qlens
                    // slots (nobody else writes them), so unchanged values
                    // skip the SeqCst store on idle iterations.
                    let mut last_raw = raw_mins[t].load(Ordering::SeqCst);
                    let mut last_qlen = qlens[t].load(Ordering::SeqCst);
                    let mut local_committed = 0u64;
                    let mut local_remote = 0u64;
                    let mut local_iters = 0u64;
                    let mut local_clock = 0u64;
                    let mut busy_ns = 0u64;
                    let mut stall_ns = 0u64;
                    let mut local_lag = 0u64;
                    let mut mailbox_hw = 0u64;
                    let mut idle_spins = 0u32;
                    let idle_spins_max = idle_spin_budget();
                    'outer: loop {
                        if done.load(Ordering::SeqCst)
                            || violated.load(Ordering::SeqCst)
                            || poisoned.load(Ordering::SeqCst)
                        {
                            break;
                        }
                        local_iters += 1;
                        let mut progressed = false;

                        // (1) Processing bound: min over peer horizons.
                        let mut bound = u64::MAX;
                        let mut peer_max = 0u64;
                        for (k, clock) in clocks.iter().enumerate() {
                            if k != t {
                                let c = clock.load(Ordering::SeqCst);
                                bound = bound.min(c);
                                peer_max = peer_max.max(c);
                            }
                        }

                        // A pending request of ours that was refused?
                        if let Some((_, snap)) = awaiting {
                            if steal_declines[t].load(Ordering::SeqCst) != snap {
                                awaiting = None;
                            }
                        }

                        // (2) Drain the mailbox. Arrivals for resident LPs
                        // lower the published raw minimum *before* the R
                        // count below (lower-before-count); arrivals for
                        // migrated LPs are relayed, with the relay's S add
                        // also preceding the R add so `S >= R` never
                        // breaks mid-relay.
                        mailboxes[t].drain_into(&mut inbox);
                        let mut drained = 0u64;
                        // Arrivals lower the published raw minimum in one
                        // batched fetch_min (still sequenced before the R
                        // add below); the `is_empty` guards keep the
                        // no-migration common case free of hash probes.
                        let mut arr_min = u64::MAX;
                        for mut chunk in inbox.drain(..) {
                            drained += chunk.len() as u64;
                            for env in chunk.drain(..) {
                                if !away.is_empty() {
                                    if let Some(&thief) = away.get(&env.dst) {
                                        sent.fetch_add(1, Ordering::SeqCst);
                                        local_remote += 1;
                                        let c = &mut chunks[thief];
                                        c.push(env);
                                        if c.len() >= MAILBOX_CHUNK {
                                            let full = std::mem::replace(
                                                c,
                                                spare_chunks.pop().unwrap_or_default(),
                                            );
                                            mailboxes[thief].push(full);
                                            owed_wake[thief] = true;
                                        }
                                        continue;
                                    }
                                }
                                arr_min = arr_min.min(env.recv_time.0);
                                let resident = (owner_of[env.dst as usize] as usize == t)
                                    || (!hosted.is_empty() && hosted.contains_key(&env.dst));
                                if resident {
                                    queue.push(env);
                                } else {
                                    stash.push(env);
                                }
                            }
                            if spare_chunks.len() < SPARE_CHUNKS_MAX {
                                spare_chunks.push(chunk);
                            }
                        }
                        if arr_min != u64::MAX {
                            raw_mins[t].fetch_min(arr_min, Ordering::SeqCst);
                            last_raw = last_raw.min(arr_min);
                        }
                        mailbox_hw = mailbox_hw.max(drained);
                        if drained > 0 {
                            received.fetch_add(drained, Ordering::SeqCst);
                            progressed = true;
                        }

                        // (3) Install migrated blocks; merge any stashed
                        // forwards that arrived ahead of their batch.
                        migrations[t].drain_into(&mut mig_inbox);
                        for m in mig_inbox.drain(..) {
                            let n_ev = m.events.len() as u64;
                            let mut ev_min = u64::MAX;
                            for env in m.events {
                                ev_min = ev_min.min(env.recv_time.0);
                                queue.push(env);
                            }
                            if ev_min != u64::MAX {
                                raw_mins[t].fetch_min(ev_min, Ordering::SeqCst);
                                last_raw = last_raw.min(ev_min);
                            }
                            for ((gid, lp), meta) in m.gids.iter().zip(m.lps).zip(m.metas) {
                                hosted.insert(*gid, xlps.len());
                                xgids.push(*gid);
                                xlps.push(Some(lp));
                                xmetas.push(meta);
                            }
                            let mut still_early = Vec::new();
                            for env in stash.drain(..) {
                                if hosted.contains_key(&env.dst) {
                                    // raw_min was already lowered at stash
                                    // time; the move is invisible to the
                                    // termination detector.
                                    queue.push(env);
                                } else {
                                    still_early.push(env);
                                }
                            }
                            stash = still_early;
                            if n_ev > 0 {
                                received.fetch_add(n_ev, Ordering::SeqCst);
                            }
                            awaiting = None;
                            progressed = true;
                        }

                        // (4) Victim protocol. Grant at most one pending
                        // request (freezing the horizon); decline anything
                        // this worker cannot serve so the thief unfreezes.
                        if !migrate_pending && steal_req[t].load(Ordering::SeqCst) != 0 {
                            let eligible = hosted.is_empty()
                                && stash.is_empty()
                                && awaiting.is_none()
                                && own_resident >= 2;
                            let av = active_victim.load(Ordering::SeqCst);
                            let granted = eligible
                                && (av == t as u64 + 1
                                    || (av == 0
                                        && active_victim
                                            .compare_exchange(
                                                0,
                                                t as u64 + 1,
                                                Ordering::SeqCst,
                                                Ordering::SeqCst,
                                            )
                                            .is_ok()));
                            if granted {
                                migrate_pending = true;
                                wake_all(t);
                            } else {
                                let req = steal_req[t].swap(0, Ordering::SeqCst);
                                if req != 0 {
                                    let thief = (req - 1) as usize;
                                    steal_declines[thief].fetch_add(1, Ordering::SeqCst);
                                    wake(thief);
                                }
                            }
                        }
                        let mut h_eff = queue
                            .peek_time()
                            .map(|ts| ts.0)
                            .unwrap_or(u64::MAX)
                            .min(stash.iter().map(|e| e.recv_time.0).min().unwrap_or(u64::MAX));
                        if migrate_pending {
                            // Handoff invariants (see module docs): peers
                            // caught up to the frozen publish, and the
                            // queue head within one lookahead of the
                            // thief's (capped) clock — so the thief's
                            // first sends from stolen events cannot
                            // undercut its own promise.
                            let req = steal_req[t].load(Ordering::SeqCst);
                            let thief = (req.max(1) - 1) as usize;
                            if req == 0 {
                                migrate_pending = false;
                            } else if bound >= published
                                && h_eff.saturating_add(la)
                                    >= clocks[thief].load(Ordering::SeqCst).max(published)
                            {
                                migrate_pending = false;
                                steal_req[t].store(0, Ordering::SeqCst);
                                let resident: Vec<u32> = my_locals
                                    .iter()
                                    .copied()
                                    .filter(|g| lps[local_of[*g as usize] as usize].is_some())
                                    .collect();
                                let take = (resident.len() / 2).max(1);
                                let gids: Vec<u32> = resident[resident.len() - take..].to_vec();
                                let mut mlps = Vec::with_capacity(gids.len());
                                let mut mmetas = Vec::with_capacity(gids.len());
                                for &g in &gids {
                                    let li = local_of[g as usize] as usize;
                                    mlps.push(lps[li].take().expect("resident LP"));
                                    mmetas.push(metas[li].clone());
                                    away.insert(g, thief);
                                    own_resident -= 1;
                                }
                                let mut keep = Vec::with_capacity(queue.len());
                                queue.drain_to(&mut keep);
                                let mut events = Vec::new();
                                for env in keep {
                                    if away.contains_key(&env.dst) {
                                        events.push(env);
                                    } else {
                                        queue.push(env);
                                    }
                                }
                                let n_ev = events.len() as u64;
                                if n_ev > 0 {
                                    sent.fetch_add(n_ev, Ordering::SeqCst);
                                }
                                steals_total.fetch_add(gids.len() as u64, Ordering::SeqCst);
                                if let Some(tp) = tap.as_mut() {
                                    tp.steal(gids.len() as u64);
                                }
                                migrations[thief].push(Migration {
                                    gids,
                                    lps: mlps,
                                    metas: mmetas,
                                    events,
                                });
                                wake(thief);
                                h_eff = queue.peek_time().map(|ts| ts.0).unwrap_or(u64::MAX);
                                progressed = true;
                            }
                        }

                        // (5) Publish the raw queue minimum (may raise: the
                        // S adds for everything that consumed the old
                        // minimum are sequenced before this store).
                        if h_eff != last_raw {
                            raw_mins[t].store(h_eff, Ordering::SeqCst);
                            last_raw = h_eff;
                        }
                        let qlen = queue.len() as u64;
                        if qlen != last_qlen {
                            qlens[t].store(qlen, Ordering::SeqCst);
                            last_qlen = qlen;
                        }

                        // (6) Process every queued event strictly below the
                        // bound (ties are unsafe: a peer at `clock == B`
                        // may still send an event *at* B).
                        let processable = queue
                            .peek_time()
                            .map(|ts| ts.0 < bound && ts <= until)
                            .unwrap_or(false);
                        if processable {
                            let t0 = timing.then(std::time::Instant::now);
                            // The burst loop, once per specialization: with
                            // `$mig = false` every hosted/away lookup folds
                            // away, which is worth ~45 ns/event on PHOLD.
                            // The maps only change outside the burst (steal
                            // handoff in step 4, install in step 3), so the
                            // choice holds for the whole burst.
                            macro_rules! burst {
                                ($mig:literal) => {
                                while let Some(top) = queue.peek() {
                                    if top.recv_time.0 >= bound || top.recv_time > until {
                                        break;
                                    }
                                    let env = queue.pop().unwrap();
                                    local_clock = local_clock.max(env.recv_time.0);
                                    let gid = env.dst as usize;
                                    let hosted_xi: Option<usize> = if $mig {
                                        hosted.get(&env.dst).copied()
                                    } else {
                                        None
                                    };
                                    let (slot, meta) = match hosted_xi {
                                        Some(xi) => (&mut xlps[xi], &mut xmetas[xi]),
                                        None => {
                                            let li = local_of[gid] as usize;
                                            (&mut lps[li], &mut metas[li])
                                        }
                                    };
                                    // Hard check (not debug): an arrival in
                                    // this LP's past means the lookahead
                                    // exceeded the model's true minimum
                                    // send delay.
                                    if env.recv_time < meta.now {
                                        let mut v = violation.lock();
                                        if v.is_none() {
                                            *v = Some(format!(
                                                "lookahead violation: event for LP {} at {} ns \
                                                 arrived after the LP reached {} ns; lookahead \
                                                 {} ns exceeds the model's minimum send delay",
                                                env.dst, env.recv_time.0, meta.now.0, la,
                                            ));
                                        }
                                        violated.store(true, Ordering::SeqCst);
                                        queue.push(env);
                                        wake_all(t);
                                        break;
                                    }
                                    meta.now = env.recv_time;
                                    meta.processed += 1;
                                    let lp = slot.as_mut().expect("resident LP state");
                                    let trace = tbuf.as_mut().map(|b| {
                                        (lp.trace_kind(&env), b.event_start(), meta.uid_seq)
                                    });
                                    let mut ctx = Ctx {
                                        now: env.recv_time,
                                        me: env.dst,
                                        lookahead: engine_lookahead,
                                        out: &mut out,
                                    };
                                    lp.handle(&env, &mut ctx);
                                    local_committed += 1;
                                    seal_outgoing(env.dst, env.recv_time, meta, &mut out, |new| {
                                        let o = owner_of[new.dst as usize] as usize;
                                        let dest = if $mig {
                                            if o == t {
                                                match away.get(&new.dst) {
                                                    None => {
                                                        queue.push(new);
                                                        return;
                                                    }
                                                    Some(&thief) => thief,
                                                }
                                            } else if hosted.contains_key(&new.dst) {
                                                queue.push(new);
                                                return;
                                            } else {
                                                o
                                            }
                                        } else if o == t {
                                            queue.push(new);
                                            return;
                                        } else {
                                            o
                                        };
                                        local_remote += 1;
                                        s_pending += 1;
                                        let c = &mut chunks[dest];
                                        c.push(new);
                                        if c.len() >= MAILBOX_CHUNK {
                                            sent.fetch_add(s_pending, Ordering::SeqCst);
                                            s_pending = 0;
                                            let full = std::mem::replace(
                                                c,
                                                spare_chunks.pop().unwrap_or_default(),
                                            );
                                            mailboxes[dest].push(full);
                                            owed_wake[dest] = true;
                                        }
                                    });
                                    if let (Some(b), Some((kind, t0, uid_lo))) =
                                        (tbuf.as_mut(), trace)
                                    {
                                        let uid_seq = match hosted_xi {
                                            Some(xi) => xmetas[xi].uid_seq,
                                            None => metas[local_of[gid] as usize].uid_seq,
                                        };
                                        let children = (uid_seq - uid_lo) as u32;
                                        b.record(&env, uid_lo, children, kind, t0);
                                    }
                                }
                                };
                            }
                            let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                if hosted.is_empty() && away.is_empty() {
                                    burst!(false)
                                } else {
                                    burst!(true)
                                }
                            }));
                            if let Err(payload) = step {
                                let mut slot = panic_payload.lock();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                poisoned.store(true, Ordering::SeqCst);
                                wake_all(t);
                            }
                            // Settle the burst's S before the step-7 flush
                            // pushes the chunks these sends sit in (and
                            // before the next iteration raises raw_min).
                            if s_pending > 0 {
                                sent.fetch_add(s_pending, Ordering::SeqCst);
                                s_pending = 0;
                            }
                            if let Some(t0) = t0 {
                                busy_ns += t0.elapsed().as_nanos() as u64;
                            }
                            progressed = true;
                        }

                        // (7) Flush partial chunks — unconditionally, so no
                        // buffered event is ever stranded locally — and
                        // settle the wakes owed for chunks pushed mid-burst.
                        // Every chunked event was S-counted at buffering,
                        // which precedes this push, so `S >= R` always
                        // holds.
                        for (o, c) in chunks.iter_mut().enumerate() {
                            if !c.is_empty() {
                                let full =
                                    std::mem::replace(c, spare_chunks.pop().unwrap_or_default());
                                mailboxes[o].push(full);
                                owed_wake[o] = true;
                            }
                        }

                        // (8) Publish the safe horizon: min(head, B) + L,
                        // capped at this iteration's bound while relaying
                        // (forwards carry no fresh lookahead) and at the
                        // victim's clock while awaiting a steal. A frozen
                        // victim skips the raise entirely. Every cap is
                        // provably at or above the previous publish, which
                        // the checked build asserts (the monotonicity
                        // oracle).
                        if !migrate_pending {
                            let h2 =
                                queue.peek_time().map(|ts| ts.0).unwrap_or(u64::MAX).min(
                                    stash.iter().map(|e| e.recv_time.0).min().unwrap_or(u64::MAX),
                                );
                            let mut val = h2.min(bound).saturating_add(la);
                            if !away.is_empty() {
                                val = val.min(bound);
                            }
                            if let Some((v, _)) = awaiting {
                                val = val.min(published.max(clocks[v].load(Ordering::SeqCst)));
                            }
                            // Only this worker writes clocks[t], so the
                            // local shadow is exact and an unchanged value
                            // can skip the RMW outright.
                            #[cfg(union_check)]
                            assert!(
                                val >= published,
                                "horizon monotonicity violated: worker {t} computed {val} \
                                 below its published {published}"
                            );
                            if val > published {
                                clocks[t].fetch_max(val, Ordering::SeqCst);
                                published = val;
                                wake_all(t);
                                owed_wake.iter_mut().for_each(|w| *w = false);
                            }
                        }
                        // Settle wakes owed for mailbox pushes, *after* the
                        // publish: a peer woken before the raise would find
                        // its new mail unprocessable, park again, and cost
                        // a second wake cycle. `wake_all` on a raise covers
                        // every owed peer (both only fire on a set parked
                        // flag), so the raise path clears the slate above;
                        // this loop is the no-raise fallback that keeps the
                        // push-then-wake pairing the Dekker handshake (and
                        // the checked build's liveness) depends on.
                        for (o, owed) in owed_wake.iter_mut().enumerate() {
                            if *owed {
                                *owed = false;
                                wake(o);
                            }
                        }
                        local_lag = local_lag.max(peer_max.saturating_sub(published));

                        // Live flush: barrier-free, so cadence is committed
                        // volume rather than rounds. One branch per outer
                        // iteration when detached.
                        if let Some(tp) = tap.as_mut() {
                            if local_committed - live_flushed.0 >= crate::live::FLUSH_EVERY {
                                tp.commit(local_committed - live_flushed.0);
                                tp.remote(local_remote - live_flushed.1);
                                live_flushed = (local_committed, local_remote);
                                if leader {
                                    tp.gvt(published.min(bound));
                                }
                                tp.lag(local_lag);
                                tp.queue_depth(queue.len() as u64);
                                tp.flush();
                            }
                        }

                        if progressed {
                            idle_spins = 0;
                            continue 'outer;
                        }

                        // (9) Idle. Leader: termination detection in the
                        // R -> mins -> S read order (see module docs).
                        if leader {
                            let r = received.load(Ordering::SeqCst);
                            let mut all_quiet = true;
                            for m in raw_mins.iter() {
                                let v = m.load(Ordering::SeqCst);
                                if v != u64::MAX && v <= until.0 {
                                    all_quiet = false;
                                    break;
                                }
                            }
                            let s = sent.load(Ordering::SeqCst);
                            if all_quiet && s == r {
                                done.store(true, Ordering::SeqCst);
                                wake_all(t);
                                break 'outer;
                            }
                        }
                        // Thief side: post a request against the most
                        // backlogged peer. Never while relaying or already
                        // waiting — and a victim never turns thief, which
                        // keeps the single-victim wait graph acyclic.
                        if awaiting.is_none()
                            && !migrate_pending
                            && away.is_empty()
                            && queue.len() == 0
                            && stash.is_empty()
                        {
                            let mut victim = usize::MAX;
                            let mut best = STEAL_MIN_QLEN;
                            for (k, qlen) in qlens.iter().enumerate() {
                                if k != t {
                                    let l = qlen.load(Ordering::SeqCst);
                                    if l >= best {
                                        best = l;
                                        victim = k;
                                    }
                                }
                            }
                            if victim != usize::MAX {
                                let snap = steal_declines[t].load(Ordering::SeqCst);
                                if steal_req[victim]
                                    .compare_exchange(
                                        0,
                                        t as u64 + 1,
                                        Ordering::SeqCst,
                                        Ordering::SeqCst,
                                    )
                                    .is_ok()
                                {
                                    awaiting = Some((victim, snap));
                                    wake(victim);
                                    continue 'outer;
                                }
                            }
                        }
                        if idle_spins < idle_spins_max {
                            idle_spins += 1;
                            std::hint::spin_loop();
                            continue 'outer;
                        }
                        // About to go quiet: flush whatever the volume
                        // cadence has not pushed yet, so a parked gang
                        // still exposes exact cumulative counts.
                        if let Some(tp) = tap.as_mut() {
                            if local_committed > live_flushed.0 || local_remote > live_flushed.1 {
                                tp.commit(local_committed - live_flushed.0);
                                tp.remote(local_remote - live_flushed.1);
                                live_flushed = (local_committed, local_remote);
                                tp.queue_depth(queue.len() as u64);
                                tp.flush();
                            }
                        }
                        // Park. Flag first, then re-check every wake
                        // condition (Dekker handshake with the wakers).
                        // Idle non-leaders nudge the leader so the final
                        // termination check always runs after the last
                        // worker goes quiet.
                        parked[t].store(true, Ordering::SeqCst);
                        if !leader {
                            wake(0);
                        }
                        let mut b2 = u64::MAX;
                        for (k, clock) in clocks.iter().enumerate() {
                            if k != t {
                                b2 = b2.min(clock.load(Ordering::SeqCst));
                            }
                        }
                        // Note the leader parks even with envelopes in
                        // flight (S != R): the worker holding them cannot
                        // park while its mailbox has mail, and whichever
                        // worker drains them either raises its horizon
                        // (wake_all) or hits the pre-park wake(0) nudge —
                        // so the leader always gets another look. Spinning
                        // here instead would burn a core in production and
                        // give the model checker an unbounded path.
                        let wake_now = done.load(Ordering::SeqCst)
                            || violated.load(Ordering::SeqCst)
                            || poisoned.load(Ordering::SeqCst)
                            || mailboxes[t].has_mail()
                            || migrations[t].has_mail()
                            || b2 > bound
                            || steal_req[t].load(Ordering::SeqCst) != 0
                            || awaiting
                                .map(|(_, snap)| steal_declines[t].load(Ordering::SeqCst) != snap)
                                .unwrap_or(false);
                        if wake_now {
                            parked[t].store(false, Ordering::SeqCst);
                            continue 'outer;
                        }
                        let t0 = std::time::Instant::now();
                        #[cfg(union_check)]
                        {
                            let _ = rx.recv();
                        }
                        #[cfg(not(union_check))]
                        {
                            // Purely a safety net — liveness of the wake
                            // protocol is verified timeout-free under
                            // `--cfg union_check`. Short timeouts are
                            // actively harmful on saturated hosts: a peer
                            // mid-burst gets preempted by every spurious
                            // timeout wake.
                            let _ = rx.recv_timeout(std::time::Duration::from_millis(10));
                        }
                        stall_ns += t0.elapsed().as_nanos() as u64;
                        if let Some(b) = tbuf.as_mut() {
                            b.end_span(crate::trace::SpanKind::Barrier, t0);
                        }
                        parked[t].store(false, Ordering::SeqCst);
                        // Eat stale tokens so one park consumes one token
                        // in steady state; conditions are re-read at the
                        // loop top regardless.
                        while rx.try_recv().is_ok() {}
                    }
                    if let Some(tp) = tap.as_mut() {
                        tp.commit(local_committed - live_flushed.0);
                        tp.remote(local_remote - live_flushed.1);
                        tp.lag(local_lag);
                        tp.pool_high_water(queue.pool_stats().high_water);
                        tp.flush();
                    }
                    committed.fetch_add(local_committed, Ordering::SeqCst);
                    remote.fetch_add(local_remote, Ordering::SeqCst);
                    rounds.fetch_max(local_iters, Ordering::SeqCst);
                    end_clock.fetch_max(local_clock, Ordering::SeqCst);
                    stall_total.fetch_add(stall_ns, Ordering::SeqCst);
                    lag_max.fetch_max(local_lag, Ordering::SeqCst);
                    if let (Some((tr, _)), Some(b)) = (trace_run.as_ref(), tbuf) {
                        tr.submit(b);
                    }
                    if telem_on {
                        thread_records.lock().push(telemetry::ThreadRecord {
                            thread: t,
                            events: local_committed,
                            busy_ns,
                            blocked_ns: stall_ns,
                            idle_ns: 0,
                            mailbox_high_water: mailbox_hw,
                        });
                    }
                    queue_ops.fetch_add(queue.ops(), Ordering::SeqCst);
                    queue_max_len.fetch_max(queue.max_len(), Ordering::SeqCst);
                    let ps = queue.pool_stats();
                    pool_high_water.fetch_max(ps.high_water, Ordering::SeqCst);
                    pool_recycled.fetch_add(ps.recycled, Ordering::SeqCst);
                    let mut returned: Vec<(u32, L, LpMeta)> = Vec::new();
                    for (li, &gid) in my_locals.iter().enumerate() {
                        if let Some(lp) = lps[li].take() {
                            returned.push((gid, lp, metas[li].clone()));
                        }
                    }
                    for ((gid, lp), meta) in xgids.iter().zip(xlps).zip(xmetas) {
                        if let Some(lp) = lp {
                            returned.push((*gid, lp, meta));
                        }
                    }
                    let mut leftover: Vec<Envelope<L::Event>> = Vec::new();
                    queue.drain_to(&mut leftover);
                    leftover.append(&mut stash);
                    *results[t].lock() = Some((returned, leftover));
                });
            }
        });

        if let Some(payload) = panic_payload.lock().take() {
            std::panic::resume_unwind(payload);
        }

        // Reassemble LP state by global id (migration means a worker's
        // return set need not match its home assignment) and reabsorb
        // unprocessed events for a later run leg.
        let mut lp_slots: Vec<Option<L>> = (0..n_lps).map(|_| None).collect();
        let mut meta_slots: Vec<Option<LpMeta>> = (0..n_lps).map(|_| None).collect();
        for slot in results.iter() {
            let (returned, leftover) =
                slot.lock().take().expect("worker thread did not report results");
            for (gid, lp, meta) in returned {
                assert!(lp_slots[gid as usize].is_none(), "LP {gid} returned twice");
                lp_slots[gid as usize] = Some(lp);
                meta_slots[gid as usize] = Some(meta);
            }
            for env in leftover {
                self.pending.push(env);
            }
        }
        // Undrained chunks / migration batches (violation or panic
        // shutdown): reabsorb defensively.
        let mut stray: Vec<Vec<Envelope<L::Event>>> = Vec::new();
        for mb in &mailboxes {
            mb.drain_into(&mut stray);
        }
        for chunk in stray {
            for env in chunk {
                self.pending.push(env);
            }
        }
        let mut stray_migs: Vec<Migration<L>> = Vec::new();
        for mb in &migrations {
            mb.drain_into(&mut stray_migs);
        }
        for m in stray_migs {
            for ((gid, lp), meta) in m.gids.iter().zip(m.lps).zip(m.metas) {
                lp_slots[*gid as usize] = Some(lp);
                meta_slots[*gid as usize] = Some(meta);
            }
            for env in m.events {
                self.pending.push(env);
            }
        }
        self.lps = lp_slots.into_iter().map(|s| s.expect("missing LP")).collect();
        self.meta = meta_slots.into_iter().map(|s| s.expect("missing meta")).collect();
        if let Some(msg) = violation.lock().take() {
            panic!("{msg}");
        }

        let stats = RunStats {
            committed: committed.load(Ordering::SeqCst),
            remote_events: remote.load(Ordering::SeqCst),
            rounds: rounds.load(Ordering::SeqCst),
            steals: steals_total.load(Ordering::SeqCst),
            horizon_stall_ns: stall_total.load(Ordering::SeqCst),
            horizon_lag_max: lag_max.load(Ordering::SeqCst),
            end_time: SimTime(end_clock.load(Ordering::SeqCst)),
            wall_seconds: start.elapsed().as_secs_f64(),
            ..Default::default()
        };
        if let Some((tr, run)) = trace_run {
            tr.close_run(run, (stats.wall_seconds * 1e9) as u64, stats.end_time.as_ns());
        }
        crate::engine::emit_sched_telemetry(
            self.telemetry.as_deref(),
            "conservative-async",
            n_threads,
            &stats,
            0,
            QueueTelemetry {
                kind: qkind,
                ops: queue_ops.load(Ordering::SeqCst),
                max_len: queue_max_len.load(Ordering::SeqCst),
                pool: crate::pool::PoolStats {
                    high_water: pool_high_water.load(Ordering::SeqCst),
                    recycled: pool_recycled.load(Ordering::SeqCst),
                },
            },
            thread_records.into_inner(),
        );
        stats
    }
}

// These tests drive real multi-thread runs; under `union_check` the
// shimmed primitives require a model-checking context, so they only
// build in production cfg (the checked-build twin lives in
// `tests/union_check_oracle.rs`).
#[cfg(all(test, not(union_check)))]
mod tests {
    use super::*;
    use crate::queue::QueueKind;
    use crate::Scheduler;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[derive(Clone)]
    struct Phold {
        rng: SmallRng,
        n_lps: u32,
        hits: u64,
        checksum: u64,
        horizon: SimTime,
    }

    impl Lp for Phold {
        type Event = u64;
        fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
            self.hits += 1;
            self.checksum = self
                .checksum
                .wrapping_mul(6364136223846793005)
                .wrapping_add(ev.payload ^ ev.recv_time.as_ns());
            if ctx.now() < self.horizon {
                let dst = self.rng.gen_range(0..self.n_lps);
                let delay = SimDuration::from_ns(self.rng.gen_range(50..500));
                ctx.send(dst, delay, self.checksum);
            }
        }
    }

    /// PHOLD whose minimum send delay (50 ns) is far above the declared
    /// engine lookahead (1 ns) — wide lookaheads are the point.
    fn phold_sim(n_lps: u32, seeds: u64) -> Simulation<Phold> {
        let lps = (0..n_lps)
            .map(|i| Phold {
                rng: SmallRng::seed_from_u64(seeds + i as u64),
                n_lps,
                hits: 0,
                checksum: 0,
                horizon: SimTime::from_us(100),
            })
            .collect();
        let mut sim = Simulation::new(lps, SimDuration::from_ns(1));
        for i in 0..n_lps {
            sim.schedule(i, SimTime::from_ns(i as u64 % 7), i as u64);
        }
        sim
    }

    fn fingerprint(sim: &Simulation<Phold>) -> Vec<(u64, u64)> {
        sim.lps().iter().map(|l| (l.hits, l.checksum)).collect()
    }

    #[test]
    fn matches_sequential_bit_for_bit() {
        let mut a = phold_sim(16, 21);
        let sa = a.run_sequential(SimTime::MAX);
        for threads in [2usize, 3, 4] {
            for la_ns in [1u64, 25, 50] {
                let mut b = phold_sim(16, 21);
                let sb =
                    b.run_conservative_async(threads, SimDuration::from_ns(la_ns), SimTime::MAX);
                assert_eq!(sa.committed, sb.committed, "t={threads} la={la_ns}");
                assert_eq!(fingerprint(&a), fingerprint(&b), "t={threads} la={la_ns}");
            }
        }
    }

    #[test]
    fn matches_sequential_on_both_queues() {
        for qk in [QueueKind::Heap, QueueKind::Ladder] {
            let mut a = phold_sim(16, 63);
            a.set_queue(qk);
            let sa = a.run_sequential(SimTime::MAX);
            let mut b = phold_sim(16, 63);
            b.set_queue(qk);
            let sb = b.run_conservative_async(3, SimDuration::from_ns(50), SimTime::MAX);
            assert_eq!(sa.committed, sb.committed, "{qk:?}");
            assert_eq!(fingerprint(&a), fingerprint(&b), "{qk:?}");
        }
    }

    #[test]
    fn custom_partition_preserves_results() {
        let mut a = phold_sim(12, 9);
        let sa = a.run_sequential(SimTime::MAX);
        let mut b = phold_sim(12, 9);
        b.set_partition(Partition::from_blocks(vec![5, 1, 5, 1, 5, 1, 9, 9, 5, 1, 9, 5]));
        let sb = b.run_conservative_async(3, SimDuration::from_ns(50), SimTime::MAX);
        assert_eq!(sa.committed, sb.committed);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn until_bound_pauses_and_resumes() {
        let mut a = phold_sim(8, 13);
        let mut b = phold_sim(8, 13);
        a.run_sequential(SimTime::MAX);
        b.run_conservative_async(3, SimDuration::from_ns(50), SimTime::from_us(40));
        assert!(b.pending_events() > 0);
        // Finish with a different scheduler — state must be seamless.
        b.run_sequential(SimTime::MAX);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn counts_remote_events() {
        let mut sim = phold_sim(16, 2);
        let stats = sim.run_conservative_async(4, SimDuration::from_ns(50), SimTime::MAX);
        assert!(stats.remote_events > 0, "PHOLD traffic must cross partitions");
        assert!(stats.remote_events <= stats.committed + sim.pending_events() as u64);
    }

    #[test]
    fn scheduler_enum_dispatches_async() {
        let mut a = phold_sim(8, 31);
        let sa = Scheduler::Sequential.run(&mut a, SimTime::MAX);
        let mut b = phold_sim(8, 31);
        let sched =
            Scheduler::ConservativeAsync { threads: 4, lookahead: SimDuration::from_ns(50) };
        let sb = sched.run(&mut b, SimTime::MAX);
        assert_eq!(sa.committed, sb.committed);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// Self-contained chain LP: every event re-sends to a neighbor within
    /// a fixed group, so all load stays on the LPs it starts on.
    #[derive(Clone)]
    struct Chain {
        group: Vec<u32>,
        hits: u64,
        checksum: u64,
        horizon: SimTime,
    }

    impl Lp for Chain {
        type Event = u64;
        fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
            self.hits += 1;
            self.checksum = self
                .checksum
                .wrapping_mul(6364136223846793005)
                .wrapping_add(ev.payload ^ ev.recv_time.as_ns());
            if ctx.now() < self.horizon {
                let pos = self.group.iter().position(|&g| g == ev.dst).unwrap();
                let dst = self.group[(pos + 1) % self.group.len()];
                ctx.send(dst, SimDuration::from_ns(60), self.checksum);
            }
        }
    }

    /// Forced imbalance: every chain lives on worker 0's LPs; worker 1 has
    /// nothing, posts a steal, and must end up hosting migrated LPs —
    /// with results still bit-identical to sequential.
    #[test]
    fn work_stealing_migrates_and_stays_exact() {
        let n_lps = 8u32;
        let mk = || {
            let group: Vec<u32> = (0..4).collect();
            let lps: Vec<Chain> = (0..n_lps)
                .map(|_| Chain {
                    group: group.clone(),
                    hits: 0,
                    checksum: 0,
                    horizon: SimTime::from_us(60),
                })
                .collect();
            let mut sim = Simulation::new(lps, SimDuration::from_ns(1));
            // Two blocks of 4 LPs; the greedy packer gives one block per
            // worker. 16 independent chains, all seeded on block 0.
            sim.set_partition(Partition::from_blocks(vec![0, 0, 0, 0, 1, 1, 1, 1]));
            for i in 0..16u64 {
                sim.schedule((i % 4) as u32, SimTime::from_ns(i), i);
            }
            sim
        };
        let mut a = mk();
        let sa = a.run_sequential(SimTime::MAX);
        let fp_a: Vec<(u64, u64)> = a.lps().iter().map(|l| (l.hits, l.checksum)).collect();
        let mut b = mk();
        let sb = b.run_conservative_async(2, SimDuration::from_ns(60), SimTime::MAX);
        let fp_b: Vec<(u64, u64)> = b.lps().iter().map(|l| (l.hits, l.checksum)).collect();
        assert_eq!(sa.committed, sb.committed, "stats: {sb:?}");
        assert_eq!(fp_a, fp_b);
        assert!(sb.steals > 0, "imbalanced run never stole: {sb:?}");
    }

    /// Ring-forwarding LP that panics once simulated time passes `boom_at`.
    #[derive(Clone)]
    struct PanickyRing {
        n_lps: u32,
        boom_at: SimTime,
        horizon: SimTime,
    }

    impl Lp for PanickyRing {
        type Event = u64;
        fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
            if ev.recv_time >= self.boom_at {
                panic!("model LP blew up at {} ns", ev.recv_time.0);
            }
            if ctx.now() < self.horizon {
                let dst = (ev.dst + 1) % self.n_lps;
                ctx.send(dst, SimDuration::from_ns(50), ev.payload + 1);
            }
        }
    }

    /// A panic in model code must resurface on the caller instead of
    /// leaving sibling workers parked forever.
    #[test]
    #[should_panic(expected = "model LP blew up")]
    fn worker_panic_propagates_instead_of_hanging() {
        let n_lps = 8u32;
        let lps = (0..n_lps)
            .map(|_| PanickyRing {
                n_lps,
                boom_at: SimTime::from_us(10),
                horizon: SimTime::from_us(100),
            })
            .collect();
        let mut sim = Simulation::new(lps, SimDuration::from_ns(1));
        for i in 0..n_lps {
            sim.schedule(i, SimTime::from_ns(i as u64), i as u64);
        }
        sim.run_conservative_async(4, SimDuration::from_ns(50), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn oversized_lookahead_is_caught() {
        // Lookahead far beyond the model's 50 ns minimum delay: the hard
        // causality check must fire rather than silently corrupt.
        let mut sim = phold_sim(16, 77);
        sim.run_conservative_async(4, SimDuration::from_us(10), SimTime::MAX);
    }
}
