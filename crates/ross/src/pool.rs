//! Envelope pool: slab-allocated cold storage for queued events.
//!
//! The pending-event queues keep only a small **hot entry** (timestamp +
//! slot index) in their sorted structures; the full [`Envelope`] — routing
//! fields, uid, model payload — parks here until the event is popped.
//! Slots are recycled through a free list, so once the simulation's event
//! population has peaked (`high_water`), the steady state performs **zero
//! heap allocations per event**: push reuses a freed slot, pop frees it
//! again, and the rollback re-insertions of the optimistic scheduler go
//! through exactly the same recycle path.
//!
//! Separating hot from cold also makes the queues cache-conscious: rung
//! buckets and heap nodes sort 24/48-byte keys instead of moving whole
//! envelopes (which carry the model payload) through every bucket spill,
//! rung spawn and sift.

use crate::event::Envelope;

/// Best-effort read prefetch into all cache levels. A scheduling hint
/// only — never required for correctness; compiles to nothing off
/// x86_64. The schedulers use it to hide the slab/LP-state misses of the
/// *next* event behind the current event's handler.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Pool counters surfaced through scheduler telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Peak number of live (queued) envelopes — the slab never grows past
    /// the population high-water mark.
    pub high_water: u64,
    /// Slot reuses: pushes served from the free list instead of fresh
    /// slab growth. In steady state this tracks `pushes - high_water`.
    pub recycled: u64,
}

impl PoolStats {
    /// Fold per-thread pools into one record: peaks max, reuse sums.
    pub fn merge(&mut self, other: PoolStats) {
        self.high_water = self.high_water.max(other.high_water);
        self.recycled += other.recycled;
    }
}

/// Slab of envelopes with a free list. Indices are dense `u32` slots —
/// the queues store them beside the hot ordering key.
pub(crate) struct EventPool<E> {
    slots: Vec<Option<Envelope<E>>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    recycled: u64,
}

impl<E> EventPool<E> {
    pub(crate) fn new() -> Self {
        EventPool { slots: Vec::new(), free: Vec::new(), live: 0, high_water: 0, recycled: 0 }
    }

    /// Park an envelope, returning its slot.
    #[inline]
    pub(crate) fn insert(&mut self, env: Envelope<E>) -> u32 {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        match self.free.pop() {
            Some(i) => {
                self.recycled += 1;
                debug_assert!(self.slots[i as usize].is_none(), "free list points at live slot");
                self.slots[i as usize] = Some(env);
                i
            }
            None => {
                let i = self.slots.len();
                assert!(i < u32::MAX as usize, "event pool exceeds u32 slots");
                self.slots.push(Some(env));
                i as u32
            }
        }
    }

    /// Remove and return the envelope in `slot`, recycling the slot.
    #[inline]
    pub(crate) fn take(&mut self, slot: u32) -> Envelope<E> {
        let env = self.slots[slot as usize].take().expect("pool slot already empty");
        self.live -= 1;
        self.free.push(slot);
        env
    }

    /// Borrow the envelope in `slot` (peek / tie comparisons).
    #[inline]
    pub(crate) fn get(&self, slot: u32) -> &Envelope<E> {
        self.slots[slot as usize].as_ref().expect("pool slot empty")
    }

    /// Hint that `slot` will be read soon (see [`prefetch_read`]).
    #[inline(always)]
    pub(crate) fn prefetch(&self, slot: u32) {
        if let Some(s) = self.slots.get(slot as usize) {
            prefetch_read(s);
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats { high_water: self.high_water as u64, recycled: self.recycled }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventUid;
    use crate::time::SimTime;

    fn env(seq: u64) -> Envelope<u64> {
        Envelope {
            recv_time: SimTime(seq),
            send_time: SimTime(0),
            src: 0,
            dst: 0,
            tiebreak: seq,
            uid: EventUid { src: 0, seq },
            payload: seq * 1000,
        }
    }

    #[test]
    fn slots_recycle_and_high_water_tracks_peak() {
        let mut p = EventPool::new();
        let a = p.insert(env(1));
        let b = p.insert(env(2));
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(a).payload, 1000);
        assert_eq!(p.take(a).uid.seq, 1);
        // The freed slot is reused; the slab does not grow.
        let c = p.insert(env(3));
        assert_eq!(c, a);
        assert_eq!(p.take(b).payload, 2000);
        assert_eq!(p.take(c).payload, 3000);
        let s = p.stats();
        assert_eq!(s.high_water, 2);
        assert_eq!(s.recycled, 1);
        assert_eq!(p.len(), 0);
    }

    #[test]
    #[should_panic(expected = "already empty")]
    fn double_take_is_caught() {
        let mut p = EventPool::new();
        let a = p.insert(env(1));
        p.take(a);
        p.take(a);
    }

    #[test]
    fn merge_folds_peaks_and_sums_reuse() {
        let mut a = PoolStats { high_water: 10, recycled: 5 };
        a.merge(PoolStats { high_water: 7, recycled: 9 });
        assert_eq!(a, PoolStats { high_water: 10, recycled: 14 });
    }
}
