//! Conservative parallel scheduler (YAWNS-style windowing).
//!
//! Each synchronization round computes the global minimum pending event
//! time `T`. Because every send carries at least `lookahead` delay, all
//! events in `[T, T + lookahead)` are causally independent across LPs and
//! can be processed concurrently; events they create land at or beyond
//! `T + lookahead` and are exchanged before the next round.

use crate::engine::{seal_outgoing, QueueTelemetry, RunStats, Simulation};
use crate::event::Envelope;
use crate::lp::{Ctx, Lp, LpMeta, Outgoing};
use crate::queue::{EventQueue, PendingQueue};
use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Partition LPs into `n` contiguous ranges of near-equal size.
pub(crate) fn partition(n_lps: usize, n_threads: usize) -> Vec<std::ops::Range<usize>> {
    let n_threads = n_threads.max(1).min(n_lps.max(1));
    let base = n_lps / n_threads;
    let extra = n_lps % n_threads;
    let mut ranges = Vec::with_capacity(n_threads);
    let mut start = 0;
    for t in 0..n_threads {
        let len = base + usize::from(t < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Map an LP id to its owning thread given the partition.
#[inline]
pub(crate) fn owner(ranges: &[std::ops::Range<usize>], lp: usize) -> usize {
    // Ranges are contiguous and sorted; binary search on start.
    match ranges.binary_search_by(|r| {
        if lp < r.start {
            std::cmp::Ordering::Greater
        } else if lp >= r.end {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        }
    }) {
        Ok(t) => t,
        Err(_) => unreachable!("LP {lp} outside all partitions"),
    }
}

impl<L: Lp> Simulation<L> {
    /// Run with the conservative windowed scheduler on `n_threads` threads
    /// until the queue drains or the next event exceeds `until`.
    ///
    /// Produces results bit-identical to [`Simulation::run_sequential`].
    pub fn run_conservative(&mut self, n_threads: usize, until: SimTime) -> RunStats {
        let start = std::time::Instant::now();
        let n_lps = self.lps.len();
        let ranges = partition(n_lps, n_threads);
        let n_threads = ranges.len();
        if n_threads <= 1 {
            return self.run_sequential(until);
        }

        // Distribute pending events to their owners' queues.
        let mut queues: Vec<PendingQueue<L::Event>> =
            (0..n_threads).map(|_| self.queue.new_queue()).collect();
        let mut scratch = Vec::with_capacity(self.pending.len());
        self.pending.drain_to(&mut scratch);
        for env in scratch.drain(..) {
            queues[owner(&ranges, env.dst as usize)].push(env);
        }

        let mailboxes: Vec<Mutex<Vec<Envelope<L::Event>>>> =
            (0..n_threads).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(n_threads);
        let mins: Vec<AtomicU64> = (0..n_threads).map(|_| AtomicU64::new(u64::MAX)).collect();
        let committed = AtomicU64::new(0);
        let rounds = AtomicU64::new(0);
        let end_clock = AtomicU64::new(0);
        let queue_ops = AtomicU64::new(0);
        let queue_max_len = AtomicU64::new(0);
        let pool_high_water = AtomicU64::new(0);
        let pool_recycled = AtomicU64::new(0);
        let lookahead = self.lookahead;
        let qkind = self.queue;
        // Telemetry: timing is a few clock reads per round, and only when
        // a recorder or tracer is attached; per-event work stays untouched
        // unless a tracer asks for it.
        let telem_on = self.telemetry.is_some();
        let trace_run = self
            .tracer
            .as_ref()
            .map(|tr| (std::sync::Arc::clone(tr), tr.open_run("conservative", n_threads)));
        let timing = telem_on || trace_run.is_some();
        let thread_records: Mutex<Vec<telemetry::ThreadRecord>> = Mutex::new(Vec::new());
        let live_handles = crate::live::LiveHandles::from_sim(&self.live, n_threads);

        // Split LPs and meta into disjoint per-thread slices.
        let mut lp_slices: Vec<&mut [L]> = Vec::with_capacity(n_threads);
        let mut meta_slices: Vec<&mut [LpMeta]> = Vec::with_capacity(n_threads);
        {
            let mut lps_rest: &mut [L] = &mut self.lps;
            let mut meta_rest: &mut [LpMeta] = &mut self.meta;
            for r in &ranges {
                let (a, b) = lps_rest.split_at_mut(r.len());
                let (c, d) = meta_rest.split_at_mut(r.len());
                lp_slices.push(a);
                meta_slices.push(c);
                lps_rest = b;
                meta_rest = d;
            }
        }

        let leftovers: Vec<Mutex<Vec<Envelope<L::Event>>>> =
            (0..n_threads).map(|_| Mutex::new(Vec::new())).collect();

        std::thread::scope(|scope| {
            for (t, (lps, metas)) in lp_slices.into_iter().zip(meta_slices).enumerate() {
                let mut queue = std::mem::replace(&mut queues[t], qkind.new_queue());
                let ranges = &ranges;
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                let mins = &mins;
                let committed = &committed;
                let rounds = &rounds;
                let end_clock = &end_clock;
                let queue_ops = &queue_ops;
                let queue_max_len = &queue_max_len;
                let pool_high_water = &pool_high_water;
                let pool_recycled = &pool_recycled;
                let leftovers = &leftovers;
                let thread_records = &thread_records;
                let trace_run = &trace_run;
                let live_handles = &live_handles;
                scope.spawn(move || {
                    let base = ranges[t].start;
                    let mut tbuf = trace_run.as_ref().map(|(tr, run)| tr.buf(*run, t as u32));
                    let mut tap = live_handles.as_ref().map(|h| h.tap(t));
                    let mut live_flushed = 0u64;
                    let mut out: Vec<Outgoing<L::Event>> = Vec::with_capacity(8);
                    let mut local_committed = 0u64;
                    let mut local_rounds = 0u64;
                    let mut local_clock = 0u64;
                    let mut busy_ns = 0u64;
                    let mut blocked_ns = 0u64;
                    let mut mailbox_hw = 0u64;
                    loop {
                        // Ingest cross-thread events from the previous round.
                        {
                            let mut mb = mailboxes[t].lock();
                            mailbox_hw = mailbox_hw.max(mb.len() as u64);
                            for env in mb.drain(..) {
                                queue.push(env);
                            }
                        }
                        // Publish local minimum, agree on the window base.
                        let local_min = queue.peek_time().map(|ts| ts.0).unwrap_or(u64::MAX);
                        mins[t].store(local_min, Ordering::Relaxed);
                        let t0 = timing.then(std::time::Instant::now);
                        barrier.wait();
                        if let Some(t0) = t0 {
                            blocked_ns += t0.elapsed().as_nanos() as u64;
                            if let Some(b) = tbuf.as_mut() {
                                b.end_span(crate::trace::SpanKind::Barrier, t0);
                            }
                        }
                        let gmin = mins.iter().map(|m| m.load(Ordering::Relaxed)).min().unwrap();
                        if gmin == u64::MAX || gmin > until.0 {
                            break;
                        }
                        local_rounds += 1;
                        let window_end =
                            gmin.saturating_add(lookahead.0).min(until.0.saturating_add(1));

                        // Process all local events inside [gmin, window_end).
                        let t0 = timing.then(std::time::Instant::now);
                        while let Some(top) = queue.peek() {
                            if top.recv_time.0 >= window_end {
                                break;
                            }
                            let env = queue.pop().unwrap();
                            local_clock = local_clock.max(env.recv_time.0);
                            let li = env.dst as usize - base;
                            debug_assert!(env.recv_time >= metas[li].now);
                            metas[li].now = env.recv_time;
                            metas[li].processed += 1;
                            let trace = tbuf.as_mut().map(|b| {
                                (lps[li].trace_kind(&env), b.event_start(), metas[li].uid_seq)
                            });
                            let mut ctx =
                                Ctx { now: env.recv_time, me: env.dst, lookahead, out: &mut out };
                            lps[li].handle(&env, &mut ctx);
                            local_committed += 1;
                            seal_outgoing(
                                env.dst,
                                env.recv_time,
                                &mut metas[li],
                                &mut out,
                                |new| {
                                    let o = owner(ranges, new.dst as usize);
                                    if o == t {
                                        queue.push(new);
                                    } else {
                                        mailboxes[o].lock().push(new);
                                    }
                                },
                            );
                            if let (Some(b), Some((kind, t0, uid_lo))) = (tbuf.as_mut(), trace) {
                                let children = (metas[li].uid_seq - uid_lo) as u32;
                                b.record(&env, uid_lo, children, kind, t0);
                            }
                        }
                        if let Some(t0) = t0 {
                            busy_ns += t0.elapsed().as_nanos() as u64;
                        }
                        // Live flush once per window: committed delta,
                        // window floor (leader), local queue depth.
                        if let Some(tp) = tap.as_mut() {
                            tp.commit(local_committed - live_flushed);
                            live_flushed = local_committed;
                            if t == 0 {
                                tp.round();
                                tp.gvt(gmin);
                            }
                            tp.queue_depth(queue.len() as u64);
                            tp.flush();
                        }
                        // All sends for this round must be visible before the
                        // next round's mailbox drain.
                        let t0 = timing.then(std::time::Instant::now);
                        barrier.wait();
                        if let Some(t0) = t0 {
                            blocked_ns += t0.elapsed().as_nanos() as u64;
                            if let Some(b) = tbuf.as_mut() {
                                b.end_span(crate::trace::SpanKind::Barrier, t0);
                            }
                        }
                    }
                    if let Some(tp) = tap.as_mut() {
                        tp.commit(local_committed - live_flushed);
                        tp.pool_high_water(queue.pool_stats().high_water);
                        tp.flush();
                    }
                    committed.fetch_add(local_committed, Ordering::Relaxed);
                    rounds.fetch_max(local_rounds, Ordering::Relaxed);
                    end_clock.fetch_max(local_clock, Ordering::Relaxed);
                    if let (Some((tr, _)), Some(b)) = (trace_run.as_ref(), tbuf) {
                        tr.submit(b);
                    }
                    if telem_on {
                        thread_records.lock().push(telemetry::ThreadRecord {
                            thread: t,
                            events: local_committed,
                            busy_ns,
                            blocked_ns,
                            idle_ns: 0,
                            mailbox_high_water: mailbox_hw,
                        });
                    }
                    queue_ops.fetch_add(queue.ops(), Ordering::Relaxed);
                    queue_max_len.fetch_max(queue.max_len(), Ordering::Relaxed);
                    let ps = queue.pool_stats();
                    pool_high_water.fetch_max(ps.high_water, Ordering::Relaxed);
                    pool_recycled.fetch_add(ps.recycled, Ordering::Relaxed);
                    // Return unprocessed events (recv_time > until).
                    let mut left = leftovers[t].lock();
                    queue.drain_to(&mut left);
                });
            }
        });

        // Reabsorb leftover events so a subsequent run can continue.
        for lb in &leftovers {
            for env in lb.lock().drain(..) {
                self.pending.push(env);
            }
        }
        for mb in &mailboxes {
            for env in mb.lock().drain(..) {
                self.pending.push(env);
            }
        }

        let stats = RunStats {
            committed: committed.load(Ordering::Relaxed),
            rounds: rounds.load(Ordering::Relaxed),
            end_time: SimTime(end_clock.load(Ordering::Relaxed)),
            wall_seconds: start.elapsed().as_secs_f64(),
            ..Default::default()
        };
        if let Some((tr, run)) = trace_run {
            tr.close_run(run, (stats.wall_seconds * 1e9) as u64, stats.end_time.as_ns());
        }
        crate::engine::emit_sched_telemetry(
            self.telemetry.as_deref(),
            "conservative",
            n_threads,
            &stats,
            0,
            QueueTelemetry {
                kind: qkind,
                ops: queue_ops.load(Ordering::Relaxed),
                max_len: queue_max_len.load(Ordering::Relaxed),
                pool: crate::pool::PoolStats {
                    high_water: pool_high_water.load(Ordering::Relaxed),
                    recycled: pool_recycled.load(Ordering::Relaxed),
                },
            },
            thread_records.into_inner(),
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything() {
        for (n_lps, n_threads) in [(10, 3), (1, 4), (8, 8), (100, 7), (5, 1)] {
            let ranges = partition(n_lps, n_threads);
            let mut covered = 0;
            for (i, r) in ranges.iter().enumerate() {
                covered += r.len();
                for lp in r.clone() {
                    assert_eq!(owner(&ranges, lp), i);
                }
            }
            assert_eq!(covered, n_lps);
        }
    }
}
