//! Pluggable pending-event queues.
//!
//! Every scheduler keeps its runnable events in an [`EventQueue`]: a
//! priority queue over [`Envelope`]s whose dequeue order is **exactly** the
//! total order defined by `Envelope::cmp` — `(recv_time, send_time, src,
//! tiebreak)` then the uid fields. Two implementations share that contract:
//!
//! * [`BinaryHeapQueue`] — `std::collections::BinaryHeap<Reverse<_>>`, the
//!   original reference implementation. O(log n) push/pop, no bookkeeping.
//! * [`LadderQueue`] — a timestamp-bucketed multi-tier queue in the spirit
//!   of Tang/Goh/Thng's ladder queue, the structure real ROSS-class
//!   simulators use for their pending-event sets. O(1) amortized push/pop:
//!   events are thrown into coarse buckets and only the bucket currently
//!   being drained is ever sorted. Far-future events sit unsorted in a
//!   *top* tier; dequeue-front events sit fully sorted in a *bottom* tier;
//!   between them a stack of *rungs* subdivides time ever more finely,
//!   spawning a child rung whenever a bucket is too large to sort cheaply.
//!
//! ## Hot/cold split
//!
//! Neither structure moves whole envelopes around. On `push` the envelope
//! parks in a per-queue [`EventPool`] slab (recycled slots, zero
//! steady-state allocation — see `pool.rs`) and only a small **hot entry**
//! travels through the tiers:
//!
//! * the ladder scatters 24-byte `HotEntry { recv, send, src, slot }`
//!   records through its rungs and sorts those in `bottom` — only full
//!   `(recv, send, src)` collisions (rare: same sender, same times) fall
//!   through to the pooled envelope;
//! * the heap sifts 48-byte self-ordering `HeapEntry` records carrying the
//!   full [`EventKey`] + uid, ordered exactly like `Envelope::cmp`.
//!
//! `pop` then reunites hot and cold with one slab lookup. The payload is
//! touched exactly twice per queue residency (park, reclaim) no matter how
//! many rung spills, era conversions or heap sifts the entry goes through.
//!
//! Determinism: bucketing partitions events by `recv_time` only, which is
//! the major key of the envelope order, and every bucket is sorted with a
//! comparator equivalent to the full `Envelope` `Ord` before it is drained —
//! so equal-`recv_time` collisions (and even full-key ties, which the uid
//! breaks during optimistic rollback transients) dequeue in exactly the
//! order the binary heap produces. The scheduler-equivalence suites assert
//! this bit for bit; `tests/queue_equivalence.rs` property-tests it on
//! adversarial streams, including payload identity through slot recycling.
//!
//! Both queues maintain two plain-`u64` telemetry counters (total push/pop
//! ops and the length high-water mark) plus the pool counters
//! ([`PoolStats`]: population high-water, recycled slots). They are local,
//! non-atomic and branch-free, so the cost is a couple of register ops per
//! event; the schedulers only read them when a telemetry recorder is
//! attached.

use crate::event::{Envelope, EventKey};
use crate::pool::{EventPool, PoolStats};
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// The pending-event-set contract shared by all schedulers.
///
/// `peek` takes `&mut self` because the ladder queue materializes (sorts)
/// its front bucket lazily on first access; observable state never changes.
pub trait EventQueue<E> {
    /// Insert an event.
    fn push(&mut self, env: Envelope<E>);
    /// Remove and return the least event in the full envelope order.
    fn pop(&mut self) -> Option<Envelope<E>>;
    /// The least event, without removing it.
    fn peek(&mut self) -> Option<&Envelope<E>>;
    /// The *second*-least event, when cheaply at hand. Best-effort — a
    /// prefetch hint for schedulers, never consulted for ordering, and
    /// `None` is always a correct answer (the default).
    fn peek2(&mut self) -> Option<&Envelope<E>> {
        None
    }
    /// Number of queued events.
    fn len(&self) -> usize;
    /// Move every queued event into `out` (order unspecified) and reset.
    fn drain_to(&mut self, out: &mut Vec<Envelope<E>>);
    /// Total push + pop operations performed (telemetry).
    fn ops(&self) -> u64;
    /// Length high-water mark (telemetry).
    fn max_len(&self) -> u64;
    /// Envelope-pool counters (population high-water, recycled slots).
    fn pool_stats(&self) -> PoolStats;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `recv_time` of the least event.
    fn peek_time(&mut self) -> Option<SimTime> {
        self.peek().map(|e| e.recv_time)
    }

    /// Full ordering key of the least event.
    fn peek_key(&mut self) -> Option<EventKey> {
        self.peek().map(|e| e.key())
    }
}

/// Which [`EventQueue`] implementation a simulation (and the per-thread
/// queues its parallel schedulers create) should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// `std::collections::BinaryHeap` — the reference implementation.
    Heap,
    /// Timestamp-bucketed ladder queue — O(1) amortized, the default.
    #[default]
    Ladder,
}

impl QueueKind {
    /// Stable name, used in `--queue` specs and telemetry records.
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Ladder => "ladder",
        }
    }

    /// Parse a `--queue` spec. Malformed specs are reported, not defaulted.
    pub fn parse(s: &str) -> Result<QueueKind, String> {
        match s {
            "heap" => Ok(QueueKind::Heap),
            "ladder" => Ok(QueueKind::Ladder),
            _ => Err(format!("unknown queue `{s}` (expected heap or ladder)")),
        }
    }

    /// A fresh empty queue of this kind.
    pub fn new_queue<E>(self) -> PendingQueue<E> {
        match self {
            QueueKind::Heap => PendingQueue::Heap(BinaryHeapQueue::new()),
            QueueKind::Ladder => PendingQueue::Ladder(LadderQueue::new()),
        }
    }
}

/// Runtime-selected queue with static dispatch per variant — the concrete
/// type the schedulers hold, so the per-event hot path pays one predictable
/// branch instead of a virtual call.
pub enum PendingQueue<E> {
    Heap(BinaryHeapQueue<E>),
    Ladder(LadderQueue<E>),
}

impl<E> PendingQueue<E> {
    /// Which implementation this is.
    pub fn kind(&self) -> QueueKind {
        match self {
            PendingQueue::Heap(_) => QueueKind::Heap,
            PendingQueue::Ladder(_) => QueueKind::Ladder,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            PendingQueue::Heap($q) => $body,
            PendingQueue::Ladder($q) => $body,
        }
    };
}

impl<E> EventQueue<E> for PendingQueue<E> {
    #[inline]
    fn push(&mut self, env: Envelope<E>) {
        dispatch!(self, q => q.push(env))
    }

    #[inline]
    fn pop(&mut self) -> Option<Envelope<E>> {
        dispatch!(self, q => q.pop())
    }

    #[inline]
    fn peek(&mut self) -> Option<&Envelope<E>> {
        dispatch!(self, q => q.peek())
    }

    #[inline]
    fn len(&self) -> usize {
        dispatch!(self, q => q.len())
    }

    fn drain_to(&mut self, out: &mut Vec<Envelope<E>>) {
        dispatch!(self, q => q.drain_to(out))
    }

    fn ops(&self) -> u64 {
        dispatch!(self, q => q.ops())
    }

    fn max_len(&self) -> u64 {
        dispatch!(self, q => q.max_len())
    }

    fn pool_stats(&self) -> PoolStats {
        dispatch!(self, q => q.pool_stats())
    }
}

// ---------------------------------------------------------------------------
// BinaryHeapQueue
// ---------------------------------------------------------------------------

/// Self-ordering hot entry for the binary heap: the full [`EventKey`] plus
/// the uid fields, compared in exactly the `Envelope::cmp` field order
/// (derive on declaration order), with the pool slot riding along last. 48
/// bytes — heap sifts move these instead of whole envelopes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEntry {
    key: EventKey,
    uid_seq: u64,
    uid_src: u32,
    /// Never reached by comparisons between distinct events (the uid is
    /// unique); participates only on exact duplicates, where any order is
    /// acceptable.
    slot: u32,
}

/// The reference implementation: a min-heap via `Reverse`.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    pool: EventPool<E>,
    ops: u64,
    max_len: u64,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        BinaryHeapQueue::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    pub fn new() -> Self {
        BinaryHeapQueue { heap: BinaryHeap::new(), pool: EventPool::new(), ops: 0, max_len: 0 }
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    #[inline]
    fn push(&mut self, env: Envelope<E>) {
        self.ops += 1;
        let key = env.key();
        let uid = env.uid;
        let slot = self.pool.insert(env);
        self.heap.push(Reverse(HeapEntry { key, uid_seq: uid.seq, uid_src: uid.src, slot }));
        if self.heap.len() as u64 > self.max_len {
            self.max_len = self.heap.len() as u64;
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Envelope<E>> {
        let entry = self.heap.pop()?.0;
        // Hide the slab miss of the next event behind the current one.
        if let Some(r) = self.heap.peek() {
            self.pool.prefetch(r.0.slot);
        }
        self.ops += 1;
        Some(self.pool.take(entry.slot))
    }

    #[inline]
    fn peek(&mut self) -> Option<&Envelope<E>> {
        match self.heap.peek() {
            Some(r) => Some(self.pool.get(r.0.slot)),
            None => None,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn drain_to(&mut self, out: &mut Vec<Envelope<E>>) {
        out.reserve(self.heap.len());
        for r in self.heap.drain() {
            out.push(self.pool.take(r.0.slot));
        }
    }

    fn ops(&self) -> u64 {
        self.ops
    }

    fn max_len(&self) -> u64 {
        self.max_len
    }

    fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

// ---------------------------------------------------------------------------
// LadderQueue
// ---------------------------------------------------------------------------

/// A bucket bigger than this is subdivided into a child rung instead of
/// being sorted wholesale (unless its bucket width is already 1 ns, the
/// resolution floor, where sorting is the only option).
const SPAWN_THRESHOLD: usize = 96;
/// Bounds on the number of buckets created per rung or top conversion.
const MIN_BUCKETS: usize = 4;
const MAX_BUCKETS: usize = 4096;
/// Retained spare bucket allocations.
const POOL_MAX: usize = 2 * MAX_BUCKETS;
/// Retained rung bucket-vector shells (rung depth is logarithmic in the
/// era width, so a handful covers every real ladder).
const SHELL_MAX: usize = 16;

/// Hot half of a queued ladder event: the leading ordering keys
/// (`recv_time`, `send_time`, `src`) plus the pool slot of the full
/// envelope. 24 bytes — rung scatters, bucket spills and bottom sorts move
/// these instead of whole envelopes.
///
/// Carrying `send`/`src` inline matters: event rates of hundreds of events
/// per simulated ns make `recv` ties the common case, and a comparator
/// that chased the pool on every tie would turn each bottom sort into a
/// cache-miss storm. `(recv, send, src)` is unique for distinct events of
/// one sender batch, so the pool fall-through below is genuinely cold.
#[derive(Clone, Copy)]
struct HotEntry {
    recv: u64,
    send: u64,
    src: u32,
    slot: u32,
}

/// Full envelope order over hot entries: `(recv, send, src)` compares
/// inline; only full collisions (same sender, same send and receive
/// times — rare) fall through to the pooled envelope's remaining fields,
/// matching `Envelope::cmp` exactly.
#[inline]
fn cmp_hot<E>(pool: &EventPool<E>, a: &HotEntry, b: &HotEntry) -> Ordering {
    (a.recv, a.send, a.src).cmp(&(b.recv, b.send, b.src)).then_with(|| {
        let ea = pool.get(a.slot);
        let eb = pool.get(b.slot);
        (ea.tiebreak, ea.uid.seq, ea.uid.src).cmp(&(eb.tiebreak, eb.uid.seq, eb.uid.src))
    })
}

/// One ladder tier: `buckets[i]` holds events with
/// `recv_time ∈ [start + i·width, start + (i+1)·width)`, unsorted.
///
/// Bucket widths are always powers of two, so the per-event bucket index
/// on push and scatter is a shift, not a 64-bit division.
struct Rung {
    /// Absolute timestamp of `buckets[0]`.
    start: u64,
    /// Bucket width in ns (≥ 1, power of two: `1 << shift`).
    width: u64,
    /// `log2(width)` — bucket index = `(ts - start) >> shift`.
    shift: u32,
    /// Dequeue frontier: events with `recv_time < cur_ts` live in deeper
    /// rungs or the bottom tier, never in this rung.
    cur_ts: u64,
    buckets: Vec<Vec<HotEntry>>,
}

/// Timestamp-bucketed pending-event queue with lazy per-bucket sorting.
///
/// Tiers, nearest-future first:
///
/// * **bottom** — the events of the bucket currently being drained, sorted
///   descending so `pop` is a `Vec::pop`. Stragglers pushed behind the
///   ladder frontier (e.g. optimistic rollback re-insertions) are merged in
///   by binary-search insertion.
/// * **rungs** — a stack of tiers; `rungs[0]` spans the whole current era
///   and each deeper rung subdivides the one bucket its parent's frontier
///   just passed. Pushes walk the stack top-down and drop the event into
///   the first rung whose frontier hasn't passed it — O(depth), and depth
///   is bounded by log of the era's width.
/// * **top** — unsorted far-future events beyond the current era
///   (`recv_time > era_end`). When the ladder drains, top collapses into a
///   fresh rung 0 and a new era begins.
///
/// Every allocation is recycled: envelopes through the slot pool, bucket
/// vectors through `spare`, rung shells through `shells`, and the `rungs` /
/// `top` / `bottom` vectors keep their capacity across eras — after warmup
/// the steady state allocates nothing per event (asserted by
/// `tests/alloc_discipline.rs`).
///
/// The one degenerate corner: events at `recv_time == u64::MAX` mixed into
/// an era that also ends at `u64::MAX` (584 simulated years) — those cannot
/// be distinguished from "beyond the era", so an era consisting *only* of
/// them is sorted straight into bottom instead of converted into a rung.
pub struct LadderQueue<E> {
    bottom: Vec<HotEntry>,
    rungs: Vec<Rung>,
    top: Vec<HotEntry>,
    /// Events with `recv_time > era_end` belong to `top`.
    era_end: u64,
    /// Min/max timestamps currently in `top` (valid while `top` is
    /// non-empty).
    top_min: u64,
    top_max: u64,
    len: usize,
    ops: u64,
    max_len: u64,
    /// Spare bucket allocations, reused across rung spawns so steady-state
    /// operation stops allocating.
    spare: Vec<Vec<HotEntry>>,
    /// Spare rung bucket-vector shells (the outer `Vec` of a rung).
    shells: Vec<Vec<Vec<HotEntry>>>,
    /// Cold storage for queued envelopes.
    pool: EventPool<E>,
}

impl<E> Default for LadderQueue<E> {
    fn default() -> Self {
        LadderQueue::new()
    }
}

impl<E> LadderQueue<E> {
    pub fn new() -> Self {
        LadderQueue {
            bottom: Vec::new(),
            rungs: Vec::new(),
            top: Vec::new(),
            era_end: 0,
            top_min: u64::MAX,
            top_max: 0,
            len: 0,
            ops: 0,
            max_len: 0,
            spare: Vec::new(),
            shells: Vec::new(),
            pool: EventPool::new(),
        }
    }

    /// Start a fresh era: everything (except `recv_time == 0`) routes to
    /// `top` until the next conversion. Only legal when no events remain —
    /// exhausted rung shells may still be present (they are collapsed
    /// lazily by `refill`) and are recycled here. Telemetry (`max_len`,
    /// `ops`, pool counters) deliberately survives era turnover: the
    /// high-water mark is a whole-run statistic.
    fn reset_era(&mut self) {
        debug_assert!(self.bottom.is_empty() && self.top.is_empty());
        debug_assert!(self.rungs.iter().all(|r| r.buckets.iter().all(|b| b.is_empty())));
        while let Some(rung) = self.rungs.pop() {
            self.retire_rung(rung);
        }
        self.era_end = 0;
        self.top_min = u64::MAX;
        self.top_max = 0;
    }

    /// Recycle a dead rung's buckets and its shell.
    fn retire_rung(&mut self, mut rung: Rung) {
        while let Some(b) = rung.buckets.pop() {
            self.recycle(b);
        }
        if self.shells.len() < SHELL_MAX {
            self.shells.push(rung.buckets);
        }
    }

    fn take_bucket(&mut self) -> Vec<HotEntry> {
        self.spare.pop().unwrap_or_default()
    }

    fn make_buckets(&mut self, n: usize) -> Vec<Vec<HotEntry>> {
        let mut v = self.shells.pop().unwrap_or_default();
        debug_assert!(v.is_empty());
        v.reserve(n);
        for _ in 0..n {
            v.push(self.take_bucket());
        }
        v
    }

    fn recycle(&mut self, mut bucket: Vec<HotEntry>) {
        bucket.clear();
        if bucket.capacity() > 0 && self.spare.len() < POOL_MAX {
            self.spare.push(bucket);
        }
    }

    /// Insert a straggler into the sorted bottom tier (descending order).
    fn insert_bottom(&mut self, entry: HotEntry) {
        let pool = &self.pool;
        let pos = self.bottom.partition_point(|e| cmp_hot(pool, e, &entry) == Ordering::Greater);
        self.bottom.insert(pos, entry);
    }

    /// Refill `bottom` from the ladder: advance the deepest rung to its
    /// next non-empty bucket, subdividing oversized buckets into child
    /// rungs, collapsing exhausted rungs, and converting `top` into a new
    /// era when the ladder is empty.
    fn refill(&mut self) {
        debug_assert!(self.bottom.is_empty());
        loop {
            let Some(ri) = self.rungs.len().checked_sub(1) else {
                if self.top.is_empty() {
                    return;
                }
                if self.top_min == self.top_max {
                    // Single-timestamp era (this also covers the
                    // u64::MAX corner): sort straight into bottom.
                    self.bottom.append(&mut self.top);
                    let pool = &self.pool;
                    self.bottom.sort_unstable_by(|a, b| cmp_hot(pool, b, a));
                    self.era_end = self.top_max;
                    self.top_min = u64::MAX;
                    self.top_max = 0;
                    return;
                }
                let start = self.top_min;
                let range = self.top_max - self.top_min; // ≥ 1
                let n = self.top.len().clamp(MIN_BUCKETS, MAX_BUCKETS) as u64;
                // Round the width up to a power of two: bucket indexing
                // becomes a shift (the per-event division otherwise shows
                // up in profiles). `n ≥ 4` keeps the rounding overflow-free.
                let width = (range / n).max(1).next_power_of_two();
                let shift = width.trailing_zeros();
                let nb = (range >> shift) as usize + 1;
                let mut buckets = self.make_buckets(nb);
                let mut top = std::mem::take(&mut self.top);
                for entry in top.drain(..) {
                    buckets[((entry.recv - start) >> shift) as usize].push(entry);
                }
                self.top = top; // keep the allocation
                self.rungs.push(Rung { start, width, shift, cur_ts: start, buckets });
                self.era_end = self.top_max;
                self.top_min = u64::MAX;
                self.top_max = 0;
                continue;
            };

            let (start, width, shift, cur_ts, nb) = {
                let r = &self.rungs[ri];
                (r.start, r.width, r.shift, r.cur_ts, r.buckets.len())
            };
            let mut j = ((cur_ts - start) >> shift) as usize;
            while j < nb && self.rungs[ri].buckets[j].is_empty() {
                j += 1;
            }
            if j >= nb {
                let dead = self.rungs.pop().unwrap();
                self.retire_rung(dead);
                continue;
            }
            let bucket_start = start + j as u64 * width;
            self.rungs[ri].cur_ts = bucket_start.saturating_add(width);
            let blen = self.rungs[ri].buckets[j].len();
            if blen > SPAWN_THRESHOLD && width > 1 {
                // Too big to sort cheaply: subdivide into a child rung.
                let mut bucket = std::mem::take(&mut self.rungs[ri].buckets[j]);
                let n = blen.clamp(MIN_BUCKETS, MAX_BUCKETS) as u64;
                // `width` is a power of two ≥ 2 and `n ≥ 4`, so the child
                // width rounds to a power of two strictly below `width` —
                // subdivision always makes progress.
                let cw = (width / n).max(1).next_power_of_two().min(width / 2);
                let cshift = cw.trailing_zeros();
                let cnb = (width >> cshift) as usize;
                let mut buckets = self.make_buckets(cnb);
                for entry in bucket.drain(..) {
                    buckets[((entry.recv - bucket_start) >> cshift) as usize].push(entry);
                }
                self.recycle(bucket);
                self.rungs.push(Rung {
                    start: bucket_start,
                    width: cw,
                    shift: cshift,
                    cur_ts: bucket_start,
                    buckets,
                });
                continue;
            }
            // Small enough: materialize this bucket as the new bottom.
            let mut bucket = std::mem::take(&mut self.rungs[ri].buckets[j]);
            std::mem::swap(&mut self.bottom, &mut bucket);
            self.recycle(bucket);
            let pool = &self.pool;
            self.bottom.sort_unstable_by(|a, b| cmp_hot(pool, b, a));
            return;
        }
    }
}

impl<E> EventQueue<E> for LadderQueue<E> {
    fn push(&mut self, env: Envelope<E>) {
        self.ops += 1;
        self.len += 1;
        if self.len as u64 > self.max_len {
            self.max_len = self.len as u64;
        }
        if self.len == 1 {
            // The queue was empty: restart the era so bulk (re)loads land
            // in the unsorted top tier instead of insertion-sorting.
            self.reset_era();
        }
        let ts = env.recv_time.0;
        let (send, src) = (env.send_time.0, env.src);
        let entry = HotEntry { recv: ts, send, src, slot: self.pool.insert(env) };
        debug_assert_eq!(self.pool.len(), self.len, "pool population out of sync");
        if ts > self.era_end {
            self.top_min = self.top_min.min(ts);
            self.top_max = self.top_max.max(ts);
            self.top.push(entry);
            return;
        }
        for r in &mut self.rungs {
            if ts >= r.cur_ts {
                let idx = ((ts - r.start) >> r.shift) as usize;
                debug_assert!(idx < r.buckets.len(), "event beyond rung range");
                r.buckets[idx].push(entry);
                return;
            }
        }
        self.insert_bottom(entry);
    }

    fn pop(&mut self) -> Option<Envelope<E>> {
        if self.bottom.is_empty() {
            self.refill();
        }
        let entry = self.bottom.pop()?;
        // Hide the slab miss of the next one or two events behind the
        // current event's handler (their hot entries sit at the sorted
        // tail; their envelopes are scattered through the slab).
        let n = self.bottom.len();
        if n > 0 {
            self.pool.prefetch(self.bottom[n - 1].slot);
            if n > 1 {
                self.pool.prefetch(self.bottom[n - 2].slot);
            }
        }
        self.ops += 1;
        self.len -= 1;
        Some(self.pool.take(entry.slot))
    }

    fn peek(&mut self) -> Option<&Envelope<E>> {
        if self.bottom.is_empty() {
            self.refill();
        }
        match self.bottom.last() {
            Some(e) => Some(self.pool.get(e.slot)),
            None => None,
        }
    }

    /// Second-least event while the sorted bottom tier holds it. When the
    /// answer would live in a rung or top (bottom nearly drained) this
    /// returns `None` rather than forcing a refill — it is a hint, and
    /// that case is one pop away from being cheap again.
    fn peek2(&mut self) -> Option<&Envelope<E>> {
        let n = self.bottom.len();
        if n >= 2 {
            Some(self.pool.get(self.bottom[n - 2].slot))
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn drain_to(&mut self, out: &mut Vec<Envelope<E>>) {
        out.reserve(self.len);
        for e in self.bottom.drain(..) {
            out.push(self.pool.take(e.slot));
        }
        while let Some(mut rung) = self.rungs.pop() {
            while let Some(mut b) = rung.buckets.pop() {
                for e in b.drain(..) {
                    out.push(self.pool.take(e.slot));
                }
                self.recycle(b);
            }
            if self.shells.len() < SHELL_MAX {
                self.shells.push(rung.buckets);
            }
        }
        for e in self.top.drain(..) {
            out.push(self.pool.take(e.slot));
        }
        self.len = 0;
        self.reset_era();
    }

    fn ops(&self) -> u64 {
        self.ops
    }

    fn max_len(&self) -> u64 {
        self.max_len
    }

    fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventUid;

    fn env(recv: u64, send: u64, src: u32, tb: u64, seq: u64) -> Envelope<u64> {
        Envelope {
            recv_time: SimTime(recv),
            send_time: SimTime(send),
            src,
            dst: 0,
            tiebreak: tb,
            uid: EventUid { src, seq },
            payload: seq,
        }
    }

    fn drain_ids<Q: EventQueue<u64>>(q: &mut Q) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.payload);
        }
        out
    }

    #[test]
    fn both_queues_sort_simple_streams_identically() {
        for kind in [QueueKind::Heap, QueueKind::Ladder] {
            let mut q = kind.new_queue();
            for (i, recv) in [50u64, 10, 30, 10, 90, 10, 70].iter().enumerate() {
                q.push(env(*recv, 0, 0, i as u64, i as u64));
            }
            // Equal recv_time ties break on (send, src, tiebreak).
            assert_eq!(drain_ids(&mut q), [1, 3, 5, 2, 0, 6, 4], "{kind:?}");
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn ladder_handles_interleaved_push_pop_below_frontier() {
        let mut heap = BinaryHeapQueue::new();
        let mut ladder = LadderQueue::new();
        let mut seq = 0u64;
        let mut push_both = |h: &mut BinaryHeapQueue<u64>, l: &mut LadderQueue<u64>, recv: u64| {
            let e = env(recv, 0, 0, seq, seq);
            h.push(e.clone());
            l.push(e);
            seq += 1;
        };
        for r in [100u64, 5000, 200, 40, 9000, 40, 40] {
            push_both(&mut heap, &mut ladder, r);
        }
        for _ in 0..3 {
            assert_eq!(heap.pop().unwrap().payload, ladder.pop().unwrap().payload);
        }
        // Push behind the ladder frontier (stragglers) and at era edges.
        for r in [60u64, 100, 100, 4999, 5000, 9001] {
            push_both(&mut heap, &mut ladder, r);
        }
        assert_eq!(drain_ids(&mut heap), drain_ids(&mut ladder));
    }

    #[test]
    fn ladder_spawns_child_rungs_on_dense_buckets() {
        let mut heap = BinaryHeapQueue::new();
        let mut ladder = LadderQueue::new();
        // Thousands of events in a narrow band force bucket subdivision;
        // a second far-future band exercises era turnover.
        let mut s = 0u64;
        for band in [0u64, 1 << 40] {
            for i in 0..4000u64 {
                let recv = band + (i * 37) % 512;
                let e = env(recv, i % 3, (i % 5) as u32, i, s);
                heap.push(e.clone());
                ladder.push(e);
                s += 1;
            }
        }
        assert_eq!(heap.len(), ladder.len());
        assert_eq!(drain_ids(&mut heap), drain_ids(&mut ladder));
    }

    #[test]
    fn single_timestamp_era_including_max_is_sorted() {
        for ts in [7u64, u64::MAX] {
            let mut q = LadderQueue::new();
            for i in 0..300u64 {
                q.push(env(ts, i % 4, (i % 3) as u32, i, i));
            }
            let mut last: Option<EventKey> = None;
            while let Some(e) = q.pop() {
                if let Some(prev) = last {
                    assert!(prev < e.key(), "order regressed at ts={ts}");
                }
                last = Some(e.key());
            }
        }
    }

    #[test]
    fn drain_to_empties_and_resets() {
        let mut q = LadderQueue::new();
        for i in 0..100u64 {
            q.push(env(i * 11, 0, 0, i, i));
        }
        q.pop();
        let mut out = Vec::new();
        q.drain_to(&mut out);
        assert_eq!(out.len(), 99);
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        // Reusable after a drain.
        q.push(env(3, 0, 0, 0, 0));
        q.push(env(1, 0, 0, 1, 1));
        assert_eq!(q.pop().unwrap().recv_time.0, 1);
    }

    #[test]
    fn telemetry_counters_track_ops_and_high_water() {
        for kind in [QueueKind::Heap, QueueKind::Ladder] {
            let mut q = kind.new_queue();
            for i in 0..10u64 {
                q.push(env(i, 0, 0, i, i));
            }
            for _ in 0..4 {
                q.pop();
            }
            assert_eq!(q.ops(), 14, "{kind:?}");
            assert_eq!(q.max_len(), 10, "{kind:?}");
            assert_eq!(q.len(), 6, "{kind:?}");
        }
    }

    #[test]
    fn pool_stats_track_population_and_recycling() {
        for kind in [QueueKind::Heap, QueueKind::Ladder] {
            let mut q = kind.new_queue();
            for i in 0..8u64 {
                q.push(env(i, 0, 0, i, i));
            }
            for _ in 0..8 {
                q.pop();
            }
            // Refill: every slot now comes off the free list.
            for i in 0..8u64 {
                q.push(env(100 + i, 0, 0, i, i + 8));
            }
            let s = q.pool_stats();
            assert_eq!(s.high_water, 8, "{kind:?}");
            assert_eq!(s.recycled, 8, "{kind:?}");
        }
    }

    /// Regression: the telemetry high-water mark is a whole-run statistic
    /// and must survive era turnover — both the implicit era restart when
    /// the queue drains to empty and refills, and an explicit `drain_to`.
    #[test]
    fn ladder_max_len_survives_era_collapse() {
        let mut q = LadderQueue::new();
        for i in 0..50u64 {
            q.push(env(i * 7, 0, 0, i, i));
        }
        assert_eq!(q.max_len(), 50);
        // Drain to empty: the next push calls `reset_era`.
        while q.pop().is_some() {}
        q.push(env(1_000_000, 0, 0, 0, 99));
        assert_eq!(q.max_len(), 50, "high-water lost across era restart");
        // An explicit drain_to also collapses the era.
        let mut out = Vec::new();
        q.drain_to(&mut out);
        q.push(env(5, 0, 0, 0, 100));
        assert_eq!(q.max_len(), 50, "high-water lost across drain_to");
        assert!(q.pool_stats().recycled > 0);
    }

    #[test]
    fn peek_matches_pop_without_consuming() {
        for kind in [QueueKind::Heap, QueueKind::Ladder] {
            let mut q = kind.new_queue();
            for i in [9u64, 2, 5] {
                q.push(env(i, 0, 0, i, i));
            }
            assert_eq!(q.peek_time(), Some(SimTime(2)));
            assert_eq!(q.peek_key().unwrap().recv_time, SimTime(2));
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop().unwrap().recv_time.0, 2, "{kind:?}");
        }
    }

    #[test]
    fn queue_kind_parses_like_sched_specs() {
        assert_eq!(QueueKind::parse("heap"), Ok(QueueKind::Heap));
        assert_eq!(QueueKind::parse("ladder"), Ok(QueueKind::Ladder));
        assert!(QueueKind::parse("splay").is_err());
        assert_eq!(QueueKind::default(), QueueKind::Ladder);
        assert_eq!(QueueKind::Heap.new_queue::<u64>().kind(), QueueKind::Heap);
    }
}
