//! # ross-pdes
//!
//! A [ROSS](https://github.com/ROSS-org/ROSS)-style parallel discrete event
//! simulation (PDES) engine, built as the substrate for the CODES network
//! models and the Union workload manager in this workspace.
//!
//! Three schedulers over the same model code:
//!
//! * [`Simulation::run_sequential`] — single-threaded reference executor;
//! * [`Simulation::run_conservative`] — YAWNS-style lookahead windows over
//!   OS threads (ROSS's conservative mode used MPI ranks; see DESIGN.md
//!   substitution #1);
//! * [`Simulation::run_optimistic`] — Time Warp with periodic state saving,
//!   coast-forward rollback, anti-messages, barrier-synchronized GVT and
//!   fossil collection.
//!
//! All three produce **bit-identical** model states: events are totally
//! ordered by `(recv_time, send_time, src, tiebreak)` where the tiebreak
//! counter is part of the rolled-back LP state. The pending-event set
//! behind every scheduler is pluggable ([`queue`]): a reference binary
//! heap or the default O(1)-amortized ladder queue, selected with
//! [`Simulation::with_queue`] / [`Simulation::set_queue`] — the choice
//! never changes results, only throughput.
//!
//! ## Model rules
//!
//! * An LP mutates only itself and communicates only via [`Ctx::send`].
//! * Every send delay is at least the engine lookahead (≥ 1 ns).
//! * Any randomness lives inside LP state (e.g. a seeded
//!   `rand::rngs::SmallRng`) so rollbacks restore the RNG stream.
//! * Metrics live inside LP state and are harvested after the run — never
//!   write to shared sinks from `handle`.
//!
//! ## Snapshot retention invariant (optimistic scheduler)
//!
//! Fossil collection never discards restore capability: retired snapshots
//! fold into a per-LP **GVT fence** (the newest snapshot at or below the
//! commit point), and every legal rollback target lies at or above the
//! fence. A rollback that undoes every snapshot younger than the straggler
//! therefore restores from the fence and coast-forwards instead of
//! failing — see [`RunStats::fence_restores`].
//!
//! ```
//! use ross::{Ctx, Envelope, Lp, SimDuration, SimTime, Simulation};
//!
//! #[derive(Clone)]
//! struct Counter { hits: u64, limit: u64 }
//!
//! impl Lp for Counter {
//!     type Event = ();
//!     fn handle(&mut self, _ev: &Envelope<()>, ctx: &mut Ctx<'_, ()>) {
//!         self.hits += 1;
//!         if self.hits < self.limit {
//!             ctx.send_self(SimDuration::from_ns(10), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(vec![Counter { hits: 0, limit: 5 }], SimDuration::from_ns(1));
//! sim.schedule(0, SimTime::ZERO, ());
//! let stats = sim.run_sequential(SimTime::MAX);
//! assert_eq!(stats.committed, 5);
//! assert_eq!(sim.lps()[0].hits, 5);
//! ```

mod asynchronous;
mod conservative;
mod engine;
mod event;
mod live;
mod lp;
mod mailbox;
mod optimistic;
mod parallel;
mod partition;
mod pool;
pub mod queue;
pub mod shard;
pub(crate) mod sync;
mod time;
pub mod trace;

pub use engine::{RunStats, Simulation};
pub use event::{Envelope, EventKey, EventUid, LpId};
pub use lp::{Ctx, Lp};
pub use optimistic::OptimisticConfig;
pub use partition::Partition;
pub use pool::PoolStats;
pub use queue::{EventQueue, QueueKind};
pub use time::{SimDuration, SimTime};
pub use trace::{SpanKind, TraceEvent, Tracer};

/// Which scheduler to use; lets callers sweep schedulers uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Single-threaded reference executor.
    Sequential,
    /// Conservative YAWNS windows on `n` threads (window = engine
    /// lookahead, contiguous partitions, mutex mailboxes).
    Conservative(usize),
    /// Optimistic Time Warp on `n` threads.
    Optimistic(usize),
    /// Optimistic Time Warp on `threads` threads with explicit tuning
    /// (batch size and snapshot interval).
    OptimisticWith { threads: usize, config: OptimisticConfig },
    /// Conservative windows of `lookahead` ns on `threads` workers, with
    /// topology-aware partitions and lock-free mailboxes — see
    /// [`Simulation::run_conservative_parallel`].
    ConservativeParallel { threads: usize, lookahead: SimDuration },
    /// Barrier-free asynchronous conservative scheduler: workers publish
    /// monotone safe horizons and steal LP blocks from backlogged peers —
    /// see [`Simulation::run_conservative_async`].
    ConservativeAsync { threads: usize, lookahead: SimDuration },
}

impl Scheduler {
    /// Run `sim` to `until` with this scheduler.
    pub fn run<L: Lp + Clone>(self, sim: &mut Simulation<L>, until: SimTime) -> RunStats {
        match self {
            Scheduler::Sequential => sim.run_sequential(until),
            Scheduler::Conservative(n) => sim.run_conservative(n, until),
            Scheduler::Optimistic(n) => sim.run_optimistic(n, OptimisticConfig::default(), until),
            Scheduler::OptimisticWith { threads, config } => {
                sim.run_optimistic(threads, config, until)
            }
            Scheduler::ConservativeParallel { threads, lookahead } => {
                sim.run_conservative_parallel(threads, lookahead, until)
            }
            Scheduler::ConservativeAsync { threads, lookahead } => {
                sim.run_conservative_async(threads, lookahead, until)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// PHOLD: every event forwards to a random LP after a random delay.
    /// Classic PDES stress test: dense cross-LP traffic, rollback-heavy
    /// under optimistic execution.
    #[derive(Clone)]
    struct Phold {
        rng: SmallRng,
        n_lps: u32,
        hits: u64,
        checksum: u64,
        horizon: SimTime,
    }

    impl Lp for Phold {
        type Event = u64;
        fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
            self.hits += 1;
            self.checksum = self
                .checksum
                .wrapping_mul(6364136223846793005)
                .wrapping_add(ev.payload ^ ev.recv_time.as_ns());
            if ctx.now() < self.horizon {
                let dst = self.rng.gen_range(0..self.n_lps);
                let delay = SimDuration::from_ns(self.rng.gen_range(1..500));
                ctx.send(dst, delay, self.checksum);
            }
        }
    }

    fn phold_sim(n_lps: u32, seeds: u64) -> Simulation<Phold> {
        let lps = (0..n_lps)
            .map(|i| Phold {
                rng: SmallRng::seed_from_u64(seeds + i as u64),
                n_lps,
                hits: 0,
                checksum: 0,
                horizon: SimTime::from_us(200),
            })
            .collect();
        let mut sim = Simulation::new(lps, SimDuration::from_ns(1));
        for i in 0..n_lps {
            sim.schedule(i, SimTime::from_ns(i as u64 % 7), i as u64);
        }
        sim
    }

    fn fingerprint(sim: &Simulation<Phold>) -> Vec<(u64, u64)> {
        sim.lps().iter().map(|l| (l.hits, l.checksum)).collect()
    }

    #[test]
    fn sequential_is_deterministic() {
        let mut a = phold_sim(16, 42);
        let mut b = phold_sim(16, 42);
        let sa = a.run_sequential(SimTime::MAX);
        let sb = b.run_sequential(SimTime::MAX);
        assert_eq!(sa.committed, sb.committed);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert!(sa.committed > 1000, "PHOLD should generate work");
    }

    #[test]
    fn conservative_matches_sequential() {
        let mut a = phold_sim(16, 7);
        let mut b = phold_sim(16, 7);
        let sa = a.run_sequential(SimTime::MAX);
        let sb = b.run_conservative(4, SimTime::MAX);
        assert_eq!(sa.committed, sb.committed);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    // The optimistic tests below drive real multi-thread runs; under
    // `union_check` the scheduler sits on the shimmed sync seam and must
    // run inside `ross_check::model()` — the oracle harness covers it
    // there (`tests/union_check_oracle.rs`, `opt:2`).
    #[test]
    #[cfg(not(union_check))]
    fn optimistic_matches_sequential() {
        let mut a = phold_sim(16, 99);
        let mut b = phold_sim(16, 99);
        let sa = a.run_sequential(SimTime::MAX);
        let sb =
            b.run_optimistic(4, OptimisticConfig { batch: 64, snapshot_interval: 3 }, SimTime::MAX);
        assert_eq!(sa.committed, sb.committed, "stats: {sb:?}");
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    #[cfg(not(union_check))]
    fn optimistic_snapshot_every_event() {
        let mut a = phold_sim(8, 3);
        let mut b = phold_sim(8, 3);
        a.run_sequential(SimTime::MAX);
        b.run_optimistic(3, OptimisticConfig { batch: 16, snapshot_interval: 1 }, SimTime::MAX);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    #[cfg(not(union_check))]
    fn deep_rollback_restores_from_gvt_fence() {
        // Tiny batches force a GVT/fossil epoch every few events, and
        // interval-4 snapshots leave the first events after each fossil
        // covered only by the fence. Cross-thread stragglers then roll
        // back past every deque snapshot — a pattern that used to panic
        // with "rollback target below oldest snapshot".
        let mut a = phold_sim(16, 1234);
        let mut b = phold_sim(16, 1234);
        let sa = a.run_sequential(SimTime::MAX);
        let sb =
            b.run_optimistic(4, OptimisticConfig { batch: 4, snapshot_interval: 4 }, SimTime::MAX);
        assert_eq!(sa.committed, sb.committed, "stats: {sb:?}");
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert!(sb.rollbacks > 0, "pattern produced no rollbacks: {sb:?}");
        assert!(
            sb.fence_restores > 0,
            "adversarial pattern never exercised the fence-restore path: {sb:?}"
        );
    }

    #[test]
    fn until_bound_pauses_and_resumes() {
        let mut a = phold_sim(8, 5);
        let mut b = phold_sim(8, 5);
        a.run_sequential(SimTime::MAX);
        // Run b in two legs split at 100us, with different schedulers.
        b.run_conservative(2, SimTime::from_us(100));
        assert!(b.pending_events() > 0);
        b.run_sequential(SimTime::MAX);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    #[cfg(not(union_check))]
    fn scheduler_enum_dispatches() {
        for sched in [Scheduler::Sequential, Scheduler::Conservative(2), Scheduler::Optimistic(2)] {
            let mut sim = phold_sim(4, 11);
            let stats = sched.run(&mut sim, SimTime::MAX);
            assert!(stats.committed > 0);
        }
    }
}
