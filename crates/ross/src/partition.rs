//! Topology-aware LP partitioning for the multi-threaded schedulers.
//!
//! A [`Partition`] groups LPs into *blocks* — sets that should stay on
//! the same worker thread because they exchange most of their traffic
//! locally. The CODES layer uses this to co-locate each router with its
//! attached node LPs (ROSS/CODES does the same with its linear LP→PE
//! mapping). Blocks are then packed onto threads by a deterministic
//! greedy bin-packer, so a partition plus a thread count always yields
//! the same placement.

use crate::event::LpId;

/// A grouping of LPs into co-location blocks.
///
/// Block ids are arbitrary `u32` labels — only equality matters. LPs
/// sharing a label are guaranteed to land on the same worker thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    block_of: Vec<u32>,
}

impl Partition {
    /// Build from a per-LP block label (`block_of[lp] == block id`).
    pub fn from_blocks(block_of: Vec<u32>) -> Partition {
        Partition { block_of }
    }

    /// The trivial partition: every LP is its own block, so the packer
    /// is free to balance LPs individually.
    pub fn per_lp(n_lps: usize) -> Partition {
        Partition { block_of: (0..n_lps as u32).collect() }
    }

    /// Number of LPs covered.
    pub fn n_lps(&self) -> usize {
        self.block_of.len()
    }

    /// The block label of one LP.
    pub fn block(&self, lp: LpId) -> u32 {
        self.block_of[lp as usize]
    }

    /// Pack blocks onto `n_threads` workers: blocks in descending size
    /// (ties by ascending block id) each go to the currently
    /// least-loaded thread (ties by ascending thread id). Deterministic
    /// by construction.
    pub(crate) fn assign(&self, n_threads: usize) -> Assignment {
        let n_lps = self.block_of.len();
        let n_threads = n_threads.max(1).min(n_lps.max(1));

        // Collect distinct blocks and their loads.
        let mut blocks: Vec<(u32, u64)> = Vec::new();
        {
            let mut sorted: Vec<u32> = self.block_of.clone();
            sorted.sort_unstable();
            for b in sorted {
                match blocks.last_mut() {
                    Some((id, load)) if *id == b => *load += 1,
                    _ => blocks.push((b, 1)),
                }
            }
        }
        blocks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut thread_load = vec![0u64; n_threads];
        // Sparse block ids → binary-searchable (block, thread) table.
        let mut block_owner: Vec<(u32, u32)> = Vec::with_capacity(blocks.len());
        for (block, load) in blocks {
            let t = thread_load
                .iter()
                .enumerate()
                .min_by_key(|&(tid, &load)| (load, tid))
                .map(|(tid, _)| tid)
                .unwrap();
            thread_load[t] += load;
            block_owner.push((block, t as u32));
        }
        block_owner.sort_unstable_by_key(|(b, _)| *b);

        let owner_of: Vec<u32> = self
            .block_of
            .iter()
            .map(|b| {
                let i = block_owner.binary_search_by_key(b, |(id, _)| *id).unwrap();
                block_owner[i].1
            })
            .collect();

        let mut locals: Vec<Vec<u32>> = vec![Vec::new(); n_threads];
        let mut local_of = vec![0u32; n_lps];
        for (gid, &t) in owner_of.iter().enumerate() {
            local_of[gid] = locals[t as usize].len() as u32;
            locals[t as usize].push(gid as u32);
        }

        Assignment { owner_of, local_of, locals }
    }
}

/// The result of packing a [`Partition`] onto a thread count.
pub(crate) struct Assignment {
    /// Owning thread of each LP (global id → thread).
    pub owner_of: Vec<u32>,
    /// Index of each LP within its thread's local vectors.
    pub local_of: Vec<u32>,
    /// Global LP ids owned by each thread, in ascending order.
    pub locals: Vec<Vec<u32>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_stay_together() {
        // 4 blocks of different sizes over 10 LPs.
        let p = Partition::from_blocks(vec![7, 7, 7, 7, 3, 3, 3, 9, 9, 11]);
        for threads in 1..=5 {
            let a = p.assign(threads);
            for (gid, &b) in [7u32, 7, 7, 7, 3, 3, 3, 9, 9, 11].iter().enumerate() {
                // Every LP with the same block label has the same owner.
                let rep = (0..10).find(|&g| p.block(g as u32) == b).unwrap();
                assert_eq!(a.owner_of[gid], a.owner_of[rep]);
            }
        }
    }

    #[test]
    fn assignment_is_consistent_and_covering() {
        let p = Partition::per_lp(23);
        let a = p.assign(4);
        let mut seen = [false; 23];
        for (t, locals) in a.locals.iter().enumerate() {
            for (li, &gid) in locals.iter().enumerate() {
                assert_eq!(a.owner_of[gid as usize] as usize, t);
                assert_eq!(a.local_of[gid as usize] as usize, li);
                assert!(!seen[gid as usize]);
                seen[gid as usize] = true;
            }
            // Locals are ascending (heap determinism relies on a stable
            // global→local mapping, not on ordering, but ascending makes
            // debugging sane).
            assert!(locals.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn balanced_when_blocks_allow() {
        let p = Partition::per_lp(40);
        let a = p.assign(4);
        for locals in &a.locals {
            assert_eq!(locals.len(), 10);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let p = Partition::from_blocks((0..100).map(|i| i % 13).collect());
        let a = p.assign(6);
        let b = p.assign(6);
        assert_eq!(a.owner_of, b.owner_of);
        assert_eq!(a.locals, b.locals);
    }

    #[test]
    fn more_threads_than_blocks() {
        let p = Partition::from_blocks(vec![0, 0, 0, 1, 1, 1]);
        let a = p.assign(8);
        // Only 2 distinct blocks → at most 2 threads get LPs; all LPs
        // still covered exactly once.
        let total: usize = a.locals.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }
}
