//! Optimistic parallel scheduler (Time Warp).
//!
//! Threads speculatively process their LPs' events in local key order.
//! A straggler (an event ordered before work already done on its LP)
//! triggers a **rollback**: the LP restores the most recent snapshot at or
//! before the straggler, *coast-forwards* (re-executes with sends
//! suppressed) up to the straggler, returns the undone events to the
//! pending set, and sends **anti-messages** cancelling every event those
//! undone events produced.
//!
//! Epochs are synchronized with barriers: every `batch` locally processed
//! events the threads drain mailboxes to quiescence, compute **GVT** (the
//! minimum unprocessed event time anywhere), and fossil-collect snapshots
//! and processed-event logs below it. Determinism: because each LP's
//! tiebreak counter is saved and restored with its state, re-executions
//! regenerate identical event keys and the committed schedule is
//! bit-identical to the sequential one.

use crate::conservative::{owner, partition};
use crate::engine::{seal_outgoing, QueueTelemetry, RunStats, Simulation};
use crate::event::{Envelope, EventKey, EventUid};
use crate::lp::{Ctx, Lp, LpMeta, Outgoing};
use crate::queue::{EventQueue, PendingQueue};
use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use crate::sync::{thread, Barrier, Mutex};
use crate::time::{SimDuration, SimTime};
use crate::trace::{SpanKind, TraceBuf};
use std::collections::{HashSet, VecDeque};

/// Tuning knobs for the optimistic scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimisticConfig {
    /// Locally processed events per thread between GVT epochs.
    pub batch: usize,
    /// Take a state snapshot every `snapshot_interval` events per LP.
    /// 1 = copy state before every event (cheapest rollbacks, most memory).
    pub snapshot_interval: u64,
}

impl Default for OptimisticConfig {
    fn default() -> Self {
        OptimisticConfig { batch: 512, snapshot_interval: 4 }
    }
}

/// A message between threads: a scheduled event or a cancellation.
enum Msg<E> {
    Event(Envelope<E>),
    Anti { dst: u32, uid: EventUid },
}

impl<E> Msg<E> {
    fn dst(&self) -> usize {
        match self {
            Msg::Event(e) => e.dst as usize,
            Msg::Anti { dst, .. } => *dst as usize,
        }
    }
}

struct SentRecord {
    dst: u32,
    uid: EventUid,
}

struct Processed<E> {
    env: Envelope<E>,
    sends: Vec<SentRecord>,
}

struct Snapshot<L> {
    /// Absolute processed-event index this snapshot precedes.
    at: u64,
    lp: L,
    tiebreak: u64,
    now: SimTime,
}

/// Per-LP runtime for Time Warp.
struct LpRt<L: Lp> {
    lp: L,
    meta: LpMeta,
    processed: VecDeque<Processed<L::Event>>,
    snapshots: VecDeque<Snapshot<L>>,
    /// The GVT fence: the newest snapshot at or below the last fossil
    /// collection point. Fossil collection *moves* retired snapshots here
    /// instead of dropping the knowledge, so a rollback whose target
    /// undoes every younger snapshot can always restore from the fence
    /// and coast-forward — it never runs out of restore targets.
    /// Invariant: `fence.at == base` after every fossil collection, and
    /// `fence.at <= base + i` for any legal rollback target `i`.
    fence: Snapshot<L>,
    /// Absolute index of `processed.front()`.
    base: u64,
}

impl<L: Lp + Clone> LpRt<L> {
    fn count(&self) -> u64 {
        self.base + self.processed.len() as u64
    }

    fn last_key(&self) -> Option<EventKey> {
        self.processed.back().map(|p| p.env.key())
    }
}

#[derive(Default)]
struct LocalStats {
    rolled: u64,
    rollbacks: u64,
    anti: u64,
    annihilated: u64,
    fence_restores: u64,
    epochs: u64,
    /// Max over epochs of `local_min - gvt`: how far this thread's
    /// frontier ran ahead of the slowest thread.
    gvt_lag_max: u64,
}

/// Roll `rt` back so every processed event with key >= `to` is undone.
/// Undone events are returned to `queue`, except the one whose uid matches
/// `skip_uid` (an annihilated event). Anti-messages for the sends of undone
/// events are appended to `antis` for the caller to post. Undone
/// executions are marked wasted in `tbuf` and the whole episode becomes
/// a rollback span.
#[allow(clippy::too_many_arguments)]
fn rollback<L: Lp + Clone>(
    rt: &mut LpRt<L>,
    to: EventKey,
    skip_uid: Option<EventUid>,
    queue: &mut PendingQueue<L::Event>,
    lookahead: SimDuration,
    scratch: &mut Vec<Outgoing<L::Event>>,
    stats: &mut LocalStats,
    antis: &mut Vec<(u32, EventUid)>,
    tbuf: &mut Option<TraceBuf>,
) {
    // First undone index (relative).
    let mut i = rt.processed.len();
    while i > 0 && rt.processed[i - 1].env.key() >= to {
        i -= 1;
    }
    if i == rt.processed.len() {
        return;
    }
    let span_t0 = tbuf.as_ref().map(|_| std::time::Instant::now());
    stats.rollbacks += 1;
    let abs_i = rt.base + i as u64;
    // Undo events [i..): re-enqueue them and cancel their sends.
    while rt.processed.len() > i {
        let p = rt.processed.pop_back().unwrap();
        stats.rolled += 1;
        if let Some(b) = tbuf.as_mut() {
            b.mark_rolled_back(p.env.uid);
        }
        for s in p.sends {
            antis.push((s.dst, s.uid));
        }
        if Some(p.env.uid) != skip_uid {
            queue.push(p.env);
        }
    }
    // Restore the latest snapshot at or before abs_i. When every snapshot
    // younger than the straggler has been undone (a deep rollback early in
    // an epoch, before the first periodic snapshot), fall back to the GVT
    // fence: it sits at `rt.base`, which is never above a legal rollback
    // target, so the restore + coast-forward below always succeeds.
    while rt.snapshots.back().map(|s| s.at > abs_i).unwrap_or(false) {
        rt.snapshots.pop_back();
    }
    let snap = match rt.snapshots.back() {
        Some(s) => s,
        None => {
            stats.fence_restores += 1;
            &rt.fence
        }
    };
    debug_assert!(snap.at >= rt.base && snap.at <= abs_i, "snapshot outside rollback range");
    let (snap_lp, snap_tiebreak, snap_now, snap_at) =
        (snap.lp.clone(), snap.tiebreak, snap.now, snap.at);
    rt.lp = snap_lp;
    rt.meta.tiebreak = snap_tiebreak;
    rt.meta.now = snap_now;
    let replay_from = (snap_at - rt.base) as usize;
    // Coast-forward: re-execute [replay_from..i) with sends suppressed —
    // those sends are already in flight and were not cancelled. The tiebreak
    // counter advances identically because the replayed handlers emit the
    // same sends.
    for k in replay_from..i {
        let env = rt.processed[k].env.clone();
        rt.meta.now = env.recv_time;
        let mut ctx = Ctx { now: env.recv_time, me: env.dst, lookahead, out: scratch };
        rt.lp.handle(&env, &mut ctx);
        seal_outgoing(env.dst, env.recv_time, &mut rt.meta, scratch, |_| {});
    }
    if let (Some(b), Some(t0)) = (tbuf.as_mut(), span_t0) {
        b.end_span(SpanKind::Rollback, t0);
    }
}

/// Deliver one message to this thread's state, rolling back on stragglers
/// and annihilating on anti-messages. Induced anti-messages go to `antis`.
#[allow(clippy::too_many_arguments)]
fn ingest<L: Lp + Clone>(
    msg: Msg<L::Event>,
    base_lp: usize,
    lookahead: SimDuration,
    rts: &mut [LpRt<L>],
    queue: &mut PendingQueue<L::Event>,
    tombstones: &mut HashSet<EventUid>,
    scratch: &mut Vec<Outgoing<L::Event>>,
    stats: &mut LocalStats,
    antis: &mut Vec<(u32, EventUid)>,
    tbuf: &mut Option<TraceBuf>,
) {
    match msg {
        Msg::Event(env) => {
            let rt = &mut rts[env.dst as usize - base_lp];
            if rt.last_key().map(|k| k >= env.key()).unwrap_or(false) {
                rollback(rt, env.key(), None, queue, lookahead, scratch, stats, antis, tbuf);
            }
            queue.push(env);
        }
        Msg::Anti { dst, uid } => {
            let rt = &mut rts[dst as usize - base_lp];
            if let Some(p) = rt.processed.iter().rev().find(|p| p.env.uid == uid) {
                let key = p.env.key();
                stats.annihilated += 1;
                rollback(rt, key, Some(uid), queue, lookahead, scratch, stats, antis, tbuf);
            } else {
                // Not yet processed: annihilate lazily when it pops.
                tombstones.insert(uid);
            }
        }
    }
}

struct ThreadOutcome<L: Lp> {
    lps: Vec<(usize, L, LpMeta)>,
    leftover: Vec<Envelope<L::Event>>,
    stats: LocalStats,
    committed: u64,
    final_gvt: u64,
    queue_ops: u64,
    queue_max_len: u64,
    pool: crate::pool::PoolStats,
}

impl<L: Lp + Clone> Simulation<L> {
    /// Run with the Time Warp scheduler on `n_threads` threads until the
    /// event population drains or GVT passes `until`.
    ///
    /// Produces results bit-identical to [`Simulation::run_sequential`].
    pub fn run_optimistic(
        &mut self,
        n_threads: usize,
        cfg: OptimisticConfig,
        until: SimTime,
    ) -> RunStats {
        assert!(cfg.snapshot_interval >= 1);
        assert!(cfg.batch >= 1);
        let start = std::time::Instant::now();
        let n_lps = self.lps.len();
        let ranges = partition(n_lps, n_threads);
        let n_threads = ranges.len();
        if n_threads <= 1 {
            return self.run_sequential(until);
        }

        let qkind = self.queue;
        let mut queues: Vec<PendingQueue<L::Event>> =
            (0..n_threads).map(|_| qkind.new_queue()).collect();
        let mut scratch0 = Vec::with_capacity(self.pending.len());
        self.pending.drain_to(&mut scratch0);
        for env in scratch0.drain(..) {
            queues[owner(&ranges, env.dst as usize)].push(env);
        }

        let mailboxes: Vec<Mutex<Vec<Msg<L::Event>>>> =
            (0..n_threads).map(|_| Mutex::new(Vec::new())).collect();
        // Net count of messages posted to mailboxes and not yet drained.
        let in_flight = AtomicI64::new(0);
        // Threads that still have local messages queued during quiescence
        // detection.
        let busy_threads = AtomicI64::new(0);
        let barrier = Barrier::new(n_threads);
        let mins: Vec<AtomicU64> = (0..n_threads).map(|_| AtomicU64::new(u64::MAX)).collect();
        let lookahead = self.lookahead;
        // Telemetry: clock reads around barriers and batches, only when a
        // recorder or tracer is attached; the per-event path is untouched
        // unless a tracer asks for it.
        let telem_on = self.telemetry.is_some();
        let trace_run = self
            .tracer
            .as_ref()
            .map(|tr| (std::sync::Arc::clone(tr), tr.open_run("optimistic", n_threads)));
        let timing = telem_on || trace_run.is_some();
        let thread_records: Mutex<Vec<telemetry::ThreadRecord>> = Mutex::new(Vec::new());
        let live_handles = crate::live::LiveHandles::from_sim(&self.live, n_threads);

        // Move LP state into per-thread runtimes.
        let mut rts_per_thread: Vec<Vec<LpRt<L>>> = Vec::with_capacity(n_threads);
        {
            let mut lps: VecDeque<L> = std::mem::take(&mut self.lps).into();
            let mut metas: VecDeque<LpMeta> = std::mem::take(&mut self.meta).into();
            for r in &ranges {
                let mut v = Vec::with_capacity(r.len());
                for _ in r.clone() {
                    let lp = lps.pop_front().unwrap();
                    let meta = metas.pop_front().unwrap();
                    // The initial fence captures the pre-run state —
                    // including the tiebreak already advanced by any
                    // `schedule()` calls — so a rollback to index 0
                    // regenerates identical event keys.
                    let fence =
                        Snapshot { at: 0, lp: lp.clone(), tiebreak: meta.tiebreak, now: meta.now };
                    v.push(LpRt {
                        lp,
                        meta,
                        processed: VecDeque::new(),
                        snapshots: VecDeque::new(),
                        fence,
                        base: 0,
                    });
                }
                rts_per_thread.push(v);
            }
        }

        let outcomes: Vec<Mutex<Option<ThreadOutcome<L>>>> =
            (0..n_threads).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for (t, mut rts) in rts_per_thread.into_iter().enumerate() {
                let mut queue = std::mem::replace(&mut queues[t], qkind.new_queue());
                let ranges = &ranges;
                let mailboxes = &mailboxes;
                let in_flight = &in_flight;
                let busy_threads = &busy_threads;
                let barrier = &barrier;
                let mins = &mins;
                let outcomes = &outcomes;
                let thread_records = &thread_records;
                let trace_run = &trace_run;
                let live_handles = &live_handles;
                scope.spawn(move || {
                    let mut tbuf = trace_run.as_ref().map(|(tr, run)| tr.buf(*run, t as u32));
                    let mut tap = live_handles.as_ref().map(|h| h.tap(t));
                    // (committed-at-GVT, rolled, rollbacks, anti) already
                    // pushed into the live registry.
                    let mut live_flushed = [0u64; 4];
                    let base_lp = ranges[t].start;
                    let mut tombstones: HashSet<EventUid> = HashSet::new();
                    let mut scratch: Vec<Outgoing<L::Event>> = Vec::with_capacity(8);
                    let mut stats = LocalStats::default();
                    let mut antis: Vec<(u32, EventUid)> = Vec::new();
                    let mut locals: VecDeque<Msg<L::Event>> = VecDeque::new();
                    let mut routed: Vec<Envelope<L::Event>> = Vec::new();
                    let mut busy_ns = 0u64;
                    let mut blocked_ns = 0u64;
                    let mut mailbox_hw = 0u64;
                    #[allow(unused_assignments)] // always written before the loop breaks
                    let mut gvt = 0u64;

                    // Post a message: remote destinations go to the owner's
                    // mailbox (counted in `in_flight`); local destinations
                    // are queued for direct ingestion.
                    let post = |m: Msg<L::Event>, locals: &mut VecDeque<Msg<L::Event>>| {
                        let o = owner(ranges, m.dst());
                        if o == t {
                            locals.push_back(m);
                        } else {
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            mailboxes[o].lock().push(m);
                        }
                    };

                    loop {
                        // ---- GVT epoch: drain to quiescence ----
                        loop {
                            while let Some(m) = locals.pop_front() {
                                ingest(
                                    m,
                                    base_lp,
                                    lookahead,
                                    &mut rts,
                                    &mut queue,
                                    &mut tombstones,
                                    &mut scratch,
                                    &mut stats,
                                    &mut antis,
                                    &mut tbuf,
                                );
                                for (dst, uid) in antis.drain(..) {
                                    stats.anti += 1;
                                    post(Msg::Anti { dst, uid }, &mut locals);
                                }
                            }
                            let msgs: Vec<Msg<L::Event>> =
                                std::mem::take(&mut *mailboxes[t].lock());
                            mailbox_hw = mailbox_hw.max(msgs.len() as u64);
                            in_flight.fetch_sub(msgs.len() as i64, Ordering::SeqCst);
                            for m in msgs {
                                ingest(
                                    m,
                                    base_lp,
                                    lookahead,
                                    &mut rts,
                                    &mut queue,
                                    &mut tombstones,
                                    &mut scratch,
                                    &mut stats,
                                    &mut antis,
                                    &mut tbuf,
                                );
                                for (dst, uid) in antis.drain(..) {
                                    stats.anti += 1;
                                    post(Msg::Anti { dst, uid }, &mut locals);
                                }
                            }
                            let busy = !locals.is_empty();
                            if busy {
                                busy_threads.fetch_add(1, Ordering::SeqCst);
                            }
                            let t0 = timing.then(std::time::Instant::now);
                            barrier.wait();
                            // Stable region: nothing mutates the counters
                            // between the two barriers, so every thread reads
                            // the same quiescence verdict.
                            let quiescent = in_flight.load(Ordering::SeqCst) == 0
                                && busy_threads.load(Ordering::SeqCst) == 0;
                            barrier.wait();
                            if let Some(t0) = t0 {
                                blocked_ns += t0.elapsed().as_nanos() as u64;
                                if let Some(b) = tbuf.as_mut() {
                                    b.end_span(SpanKind::Barrier, t0);
                                }
                            }
                            if busy {
                                busy_threads.fetch_sub(1, Ordering::SeqCst);
                            }
                            if quiescent {
                                break;
                            }
                        }

                        // ---- compute GVT ----
                        while let Some(uid) = queue.peek().map(|top| top.uid) {
                            if tombstones.remove(&uid) {
                                queue.pop();
                                stats.annihilated += 1;
                            } else {
                                break;
                            }
                        }
                        let local_min = queue.peek_time().map(|ts| ts.0).unwrap_or(u64::MAX);
                        mins[t].store(local_min, Ordering::SeqCst);
                        let t0 = timing.then(std::time::Instant::now);
                        barrier.wait();
                        gvt = mins.iter().map(|m| m.load(Ordering::SeqCst)).min().unwrap();
                        stats.epochs += 1;
                        if local_min != u64::MAX {
                            stats.gvt_lag_max =
                                stats.gvt_lag_max.max(local_min.saturating_sub(gvt));
                        }
                        // All threads computed the same GVT; the barrier at
                        // the top of the next epoch keeps phases aligned.
                        barrier.wait();
                        if let Some(t0) = t0 {
                            blocked_ns += t0.elapsed().as_nanos() as u64;
                            if let Some(b) = tbuf.as_mut() {
                                b.end_span(SpanKind::Gvt, t0);
                            }
                        }
                        if gvt == u64::MAX || gvt > until.0 {
                            break;
                        }

                        // ---- fossil collection ----
                        // Events below GVT are committed: retire their
                        // snapshots into the fence (the newest one at or
                        // below the keep point) and drop the processed log
                        // below it. Rollback targets are never below GVT,
                        // so the fence always covers them.
                        let fossil_t0 = tbuf.as_ref().map(|_| std::time::Instant::now());
                        let mut live_cum = 0u64;
                        for rt in rts.iter_mut() {
                            let mut i = rt.processed.len();
                            while i > 0 && rt.processed[i - 1].env.recv_time.0 >= gvt {
                                i -= 1;
                            }
                            // Events strictly below GVT are committed for
                            // good: `abs_keep` summed over LPs is this
                            // thread's exact, monotone committed count —
                            // what the live plane reports mid-run.
                            let abs_keep = rt.base + i as u64;
                            live_cum += abs_keep;
                            while rt.snapshots.front().map(|s| s.at <= abs_keep).unwrap_or(false) {
                                rt.fence = rt.snapshots.pop_front().unwrap();
                            }
                            while rt.base < rt.fence.at {
                                rt.processed.pop_front();
                                rt.base += 1;
                            }
                            debug_assert_eq!(rt.fence.at, rt.base);
                        }
                        if let (Some(b), Some(t0)) = (tbuf.as_mut(), fossil_t0) {
                            b.end_span(SpanKind::Fossil, t0);
                        }
                        // Live flush once per GVT epoch. Committed counts
                        // only events at or below GVT (monotone even under
                        // rollback); rollback/anti counters flush deltas.
                        if let Some(tp) = tap.as_mut() {
                            tp.commit(live_cum.saturating_sub(live_flushed[0]));
                            tp.roll_back(
                                stats.rolled - live_flushed[1],
                                stats.rollbacks - live_flushed[2],
                            );
                            tp.anti_message(stats.anti - live_flushed[3]);
                            live_flushed = [
                                live_cum.max(live_flushed[0]),
                                stats.rolled,
                                stats.rollbacks,
                                stats.anti,
                            ];
                            if t == 0 {
                                tp.round();
                                tp.gvt(gvt);
                            }
                            tp.lag(stats.gvt_lag_max);
                            tp.queue_depth(queue.len() as u64);
                            tp.flush();
                        }

                        // ---- speculative processing batch ----
                        let t0 = timing.then(std::time::Instant::now);
                        let mut processed_now = 0usize;
                        while processed_now < cfg.batch {
                            // Stragglers delivered by local sends first.
                            while let Some(m) = locals.pop_front() {
                                ingest(
                                    m,
                                    base_lp,
                                    lookahead,
                                    &mut rts,
                                    &mut queue,
                                    &mut tombstones,
                                    &mut scratch,
                                    &mut stats,
                                    &mut antis,
                                    &mut tbuf,
                                );
                                for (dst, uid) in antis.drain(..) {
                                    stats.anti += 1;
                                    post(Msg::Anti { dst, uid }, &mut locals);
                                }
                            }
                            let env = loop {
                                match queue.pop() {
                                    None => break None,
                                    Some(e) => {
                                        if tombstones.remove(&e.uid) {
                                            stats.annihilated += 1;
                                            continue;
                                        }
                                        break Some(e);
                                    }
                                }
                            };
                            let Some(env) = env else { break };
                            if env.recv_time > until {
                                queue.push(env);
                                break;
                            }
                            {
                                let rt = &mut rts[env.dst as usize - base_lp];
                                debug_assert!(
                                    rt.last_key().map(|k| k < env.key()).unwrap_or(true),
                                    "out-of-order speculative execution"
                                );
                                let count = rt.count();
                                // The fence acts as the previous snapshot
                                // when the deque is empty, keeping the
                                // snapshot cadence exact across fossils
                                // and deep rollbacks.
                                let due = match rt.snapshots.back() {
                                    None => count - rt.fence.at >= cfg.snapshot_interval,
                                    Some(s) => count - s.at >= cfg.snapshot_interval,
                                };
                                if due {
                                    rt.snapshots.push_back(Snapshot {
                                        at: count,
                                        lp: rt.lp.clone(),
                                        tiebreak: rt.meta.tiebreak,
                                        now: rt.meta.now,
                                    });
                                }
                                rt.meta.now = env.recv_time;
                                rt.meta.processed += 1;
                                let trace = tbuf.as_mut().map(|b| {
                                    (rt.lp.trace_kind(&env), b.event_start(), rt.meta.uid_seq)
                                });
                                let mut ctx = Ctx {
                                    now: env.recv_time,
                                    me: env.dst,
                                    lookahead,
                                    out: &mut scratch,
                                };
                                rt.lp.handle(&env, &mut ctx);
                                let mut sends = Vec::new();
                                seal_outgoing(
                                    env.dst,
                                    env.recv_time,
                                    &mut rt.meta,
                                    &mut scratch,
                                    |e| {
                                        sends.push(SentRecord { dst: e.dst, uid: e.uid });
                                        routed.push(e);
                                    },
                                );
                                if let (Some(b), Some((kind, t0, uid_lo))) = (tbuf.as_mut(), trace)
                                {
                                    let children = (rt.meta.uid_seq - uid_lo) as u32;
                                    b.record(&env, uid_lo, children, kind, t0);
                                }
                                rt.processed.push_back(Processed { env, sends });
                            }
                            // Route after releasing the LP borrow: local
                            // deliveries may roll back *other* local LPs.
                            for e in routed.drain(..) {
                                post(Msg::Event(e), &mut locals);
                            }
                            processed_now += 1;
                        }
                        if let Some(t0) = t0 {
                            busy_ns += t0.elapsed().as_nanos() as u64;
                        }
                    }

                    let committed: u64 = rts.iter().map(|rt| rt.meta.processed).sum();
                    if let Some(tp) = tap.as_mut() {
                        // At termination everything processed is committed;
                        // flush the remainder above the last fossil point.
                        tp.commit(committed.saturating_sub(live_flushed[0]));
                        tp.roll_back(
                            stats.rolled - live_flushed[1],
                            stats.rollbacks - live_flushed[2],
                        );
                        tp.anti_message(stats.anti - live_flushed[3]);
                        tp.lag(stats.gvt_lag_max);
                        tp.pool_high_water(queue.pool_stats().high_water);
                        tp.flush();
                    }
                    if let (Some((tr, _)), Some(b)) = (trace_run.as_ref(), tbuf) {
                        tr.submit(b);
                    }
                    if telem_on {
                        thread_records.lock().push(telemetry::ThreadRecord {
                            thread: t,
                            events: committed,
                            busy_ns,
                            blocked_ns,
                            idle_ns: 0,
                            mailbox_high_water: mailbox_hw,
                        });
                    }
                    let lps = rts
                        .into_iter()
                        .enumerate()
                        .map(|(i, rt)| (base_lp + i, rt.lp, rt.meta))
                        .collect();
                    let (queue_ops, queue_max_len) = (queue.ops(), queue.max_len());
                    let pool = queue.pool_stats();
                    let mut leftover: Vec<Envelope<L::Event>> = Vec::new();
                    queue.drain_to(&mut leftover);
                    leftover.retain(|e| {
                        let dead = tombstones.contains(&e.uid);
                        if dead {
                            stats.annihilated += 1;
                        }
                        !dead
                    });
                    *outcomes[t].lock() = Some(ThreadOutcome {
                        lps,
                        leftover,
                        stats,
                        committed,
                        final_gvt: gvt,
                        queue_ops,
                        queue_max_len,
                        pool,
                    });
                });
            }
        });

        // Reassemble LP state and leftover events.
        let mut lps: Vec<Option<L>> = (0..n_lps).map(|_| None).collect();
        let mut metas: Vec<LpMeta> = (0..n_lps).map(|_| LpMeta::new()).collect();
        let mut stats = RunStats::default();
        let mut speculative = 0u64;
        let mut max_gvt_lag = 0u64;
        let mut queue_telem = QueueTelemetry::empty(qkind);
        for oc in &outcomes {
            if let Some(oc) = oc.lock().take() {
                for (i, lp, meta) in oc.lps {
                    lps[i] = Some(lp);
                    metas[i] = meta;
                }
                for env in oc.leftover {
                    self.pending.push(env);
                }
                queue_telem.ops += oc.queue_ops;
                queue_telem.max_len = queue_telem.max_len.max(oc.queue_max_len);
                queue_telem.pool.merge(oc.pool);
                speculative += oc.committed;
                stats.rolled_back += oc.stats.rolled;
                stats.rollbacks += oc.stats.rollbacks;
                stats.anti_messages += oc.stats.anti;
                stats.annihilated += oc.stats.annihilated;
                stats.fence_restores += oc.stats.fence_restores;
                stats.rounds = stats.rounds.max(oc.stats.epochs);
                stats.end_time = stats.end_time.max(SimTime(oc.final_gvt.min(until.0)));
                max_gvt_lag = max_gvt_lag.max(oc.stats.gvt_lag_max);
            }
        }
        self.lps = lps.into_iter().map(|o| o.expect("missing LP after run")).collect();
        self.meta = metas;

        // `meta.processed` counts speculative executions (including
        // re-executions); committed work is the difference.
        stats.committed = speculative - stats.rolled_back;
        stats.wall_seconds = start.elapsed().as_secs_f64();
        if let Some((tr, run)) = trace_run {
            tr.close_run(run, (stats.wall_seconds * 1e9) as u64, stats.end_time.as_ns());
        }
        crate::engine::emit_sched_telemetry(
            self.telemetry.as_deref(),
            "optimistic",
            n_threads,
            &stats,
            max_gvt_lag,
            queue_telem,
            thread_records.into_inner(),
        );
        stats
    }
}
