//! The `Simulation` container shared by all three schedulers.

use crate::event::{Envelope, EventUid, LpId};
use crate::lp::{Ctx, Lp, LpMeta, Outgoing};
use crate::queue::{EventQueue, PendingQueue, QueueKind};
use crate::time::{SimDuration, SimTime};

/// Statistics returned by a scheduler run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Events processed and committed.
    pub committed: u64,
    /// Events that were processed speculatively and later rolled back
    /// (optimistic scheduler only).
    pub rolled_back: u64,
    /// Rollback episodes (optimistic scheduler only).
    pub rollbacks: u64,
    /// Anti-messages sent (optimistic scheduler only).
    pub anti_messages: u64,
    /// Anti-messages that met their target before it executed and
    /// cancelled it without a rollback (optimistic scheduler only).
    pub annihilated: u64,
    /// Rollbacks that restored from the GVT-fence snapshot because every
    /// younger snapshot had been undone (optimistic scheduler only).
    pub fence_restores: u64,
    /// Events delivered across partitions through mailboxes
    /// (conservative-parallel scheduler only).
    pub remote_events: u64,
    /// Events delivered across OS-process shards through a transport
    /// ([`crate::shard`] runs only).
    pub cross_shard_events: u64,
    /// Synchronization rounds (conservative windows or GVT epochs).
    pub rounds: u64,
    /// LP blocks migrated between workers by work stealing
    /// (conservative-async scheduler only).
    pub steals: u64,
    /// Total nanoseconds workers spent stalled waiting for peer safe
    /// horizons to advance (conservative-async scheduler only).
    pub horizon_stall_ns: u64,
    /// Max observed gap between the most- and least-advanced published
    /// safe horizons (conservative-async scheduler only).
    pub horizon_lag_max: u64,
    /// Wall-clock seconds spent inside the scheduler.
    pub wall_seconds: f64,
    /// Final GVT / global clock when the run stopped.
    pub end_time: SimTime,
}

impl RunStats {
    /// Committed event rate in events per wall-clock second.
    pub fn event_rate(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.committed as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Fraction of processed events that were wasted on rollbacks.
    pub fn rollback_efficiency(&self) -> f64 {
        let total = self.committed + self.rolled_back;
        if total == 0 {
            1.0
        } else {
            self.committed as f64 / total as f64
        }
    }
}

/// A discrete-event simulation: a set of LPs plus pending events.
///
/// Construct with [`Simulation::new`], inject initial events with
/// [`Simulation::schedule`], then drive it with one of
/// `run_sequential`, [`crate::conservative::run_conservative`] (via the
/// inherent method) or [`crate::optimistic::run_optimistic`].
pub struct Simulation<L: Lp> {
    pub(crate) lps: Vec<L>,
    pub(crate) meta: Vec<LpMeta>,
    pub(crate) pending: PendingQueue<L::Event>,
    /// Which queue implementation `pending` (and the per-thread queues the
    /// parallel schedulers build) uses.
    pub(crate) queue: QueueKind,
    pub(crate) lookahead: SimDuration,
    /// Co-location hint for the conservative-parallel scheduler.
    pub(crate) partition: Option<crate::partition::Partition>,
    /// Telemetry sink; every scheduler emits one record per run when set.
    pub(crate) telemetry: Option<std::sync::Arc<telemetry::Recorder>>,
    /// Causal tracer; every scheduler records per-event causality and
    /// phase spans into it when set.
    pub(crate) tracer: Option<std::sync::Arc<crate::trace::Tracer>>,
    /// Live metrics registry; every scheduler streams counters, gauges,
    /// and histograms into it at sync-point cadence when set.
    pub(crate) live: Option<std::sync::Arc<telemetry::live::MetricsRegistry>>,
}

impl<L: Lp> Simulation<L> {
    /// Create a simulation over `lps` with the given minimum event delay
    /// (`lookahead`). Every [`Ctx::send`] must use a delay of at least
    /// `lookahead`; 1 ns is always safe but shrinks conservative windows.
    /// Uses the default event queue ([`QueueKind::Ladder`]); see
    /// [`Simulation::with_queue`].
    pub fn new(lps: Vec<L>, lookahead: SimDuration) -> Self {
        Simulation::with_queue(lps, lookahead, QueueKind::default())
    }

    /// [`Simulation::new`] with an explicit event-queue implementation.
    /// The choice never affects results — only throughput.
    pub fn with_queue(lps: Vec<L>, lookahead: SimDuration, queue: QueueKind) -> Self {
        assert!(lookahead.as_ns() >= 1, "lookahead must be at least 1 ns");
        let n = lps.len();
        Simulation {
            lps,
            meta: (0..n).map(|_| LpMeta::new()).collect(),
            pending: queue.new_queue(),
            queue,
            lookahead,
            partition: None,
            telemetry: None,
            tracer: None,
            live: None,
        }
    }

    /// Swap the event-queue implementation. Pending events (e.g. between
    /// the legs of a paused run) are migrated to the new queue.
    pub fn set_queue(&mut self, queue: QueueKind) {
        if queue == self.queue {
            return;
        }
        let mut moved = Vec::with_capacity(self.pending.len());
        self.pending.drain_to(&mut moved);
        self.queue = queue;
        self.pending = queue.new_queue();
        for env in moved {
            self.pending.push(env);
        }
    }

    /// The event-queue implementation in use.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue
    }

    /// Attach (or detach) a telemetry recorder. When set, every scheduler
    /// run appends one `scheduler` record with its counters and per-thread
    /// timing to the recorder. Schedulers read only thread-local counters
    /// on hot paths; with `None` (the default) even the clock reads are
    /// skipped, so the disabled cost is zero.
    pub fn set_telemetry(&mut self, recorder: Option<std::sync::Arc<telemetry::Recorder>>) {
        self.telemetry = recorder;
    }

    /// Attach (or detach) a causal tracer ([`crate::trace`]). When set,
    /// every scheduler run opens a trace run, records each executed
    /// event (plus rolled-back work and phase spans on the parallel
    /// schedulers) and closes the run with its wall time. With `None`
    /// (the default) the per-event cost is a single branch.
    pub fn set_tracer(&mut self, tracer: Option<std::sync::Arc<crate::trace::Tracer>>) {
        self.tracer = tracer;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&std::sync::Arc<crate::trace::Tracer>> {
        self.tracer.as_ref()
    }

    /// Attach (or detach) a live metrics registry
    /// ([`telemetry::live::MetricsRegistry`]). When set, every scheduler
    /// streams its counters/gauges/histograms into the registry at its
    /// synchronization cadence (windows, rounds, GVT epochs, or every few
    /// thousand events on the sequential path) so an exposition endpoint
    /// can observe the run in flight. With `None` (the default) the cost
    /// is a single branch at those same coarse points.
    pub fn set_live(&mut self, live: Option<std::sync::Arc<telemetry::live::MetricsRegistry>>) {
        self.live = live;
    }

    /// The attached live registry, if any.
    pub fn live(&self) -> Option<&std::sync::Arc<telemetry::live::MetricsRegistry>> {
        self.live.as_ref()
    }

    /// Install a co-location hint for
    /// [`Simulation::run_conservative_parallel`]: LPs sharing a block
    /// are guaranteed to run on the same worker thread. Has no effect on
    /// results (only on cross-thread traffic), and no effect on the
    /// other schedulers.
    pub fn set_partition(&mut self, partition: crate::partition::Partition) {
        assert_eq!(
            partition.n_lps(),
            self.lps.len(),
            "partition covers {} LPs but the simulation has {}",
            partition.n_lps(),
            self.lps.len()
        );
        self.partition = Some(partition);
    }

    /// The installed partition hint, if any.
    pub fn partition(&self) -> Option<&crate::partition::Partition> {
        self.partition.as_ref()
    }

    /// Number of LPs.
    pub fn n_lps(&self) -> usize {
        self.lps.len()
    }

    /// Inject an event from "outside" the model before (or between) runs.
    pub fn schedule(&mut self, dst: LpId, at: SimTime, payload: L::Event) {
        assert!((dst as usize) < self.lps.len(), "dst {dst} out of range");
        let meta = &mut self.meta[dst as usize];
        let env = Envelope {
            recv_time: at,
            send_time: SimTime::ZERO,
            src: dst,
            dst,
            tiebreak: meta.tiebreak,
            uid: EventUid { src: dst, seq: meta.uid_seq },
            payload,
        };
        meta.tiebreak += 1;
        meta.uid_seq += 1;
        self.pending.push(env);
    }

    /// Read access to the LPs (e.g. to pull metrics out after a run).
    pub fn lps(&self) -> &[L] {
        &self.lps
    }

    /// Consume the simulation, returning the LPs.
    pub fn into_lps(self) -> Vec<L> {
        self.lps
    }

    /// Number of events awaiting processing.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Envelope-pool counters of the pending-event queue (population
    /// high-water mark, recycled slots). The parallel schedulers report
    /// their per-thread queues' counters through telemetry instead.
    pub fn pending_pool_stats(&self) -> crate::pool::PoolStats {
        self.pending.pool_stats()
    }

    /// Run with the single-threaded reference scheduler until the event
    /// queue drains or the next event is after `until`. Events beyond
    /// `until` remain pending.
    pub fn run_sequential(&mut self, until: SimTime) -> RunStats {
        let start = std::time::Instant::now();
        let mut stats = RunStats::default();
        let mut out: Vec<Outgoing<L::Event>> = Vec::with_capacity(8);
        let mut clock = SimTime::ZERO;
        let mut flushed_committed = 0u64;
        let mut tbuf = self.tracer.as_ref().map(|tr| {
            let run = tr.open_run("sequential", 1);
            tr.buf(run, 0)
        });
        let mut tap = crate::live::LiveHandles::from_sim(&self.live, 1).map(|h| h.tap(0));

        // Pop directly instead of peek-clone-pop: the one event that lands
        // beyond `until` is pushed back, every committed event moves once.
        while let Some(mut env) = self.pending.pop() {
            if env.recv_time > until {
                self.pending.push(env);
                break;
            }
            let dst = env.dst as usize;
            // Same-LP run batching: as long as the *global* minimum event
            // stays on this LP, keep executing with its state (and meta
            // line) resident instead of bouncing through the outer loop.
            // Re-peeking after every handle sees the sends the handler
            // just queued, so this is exactly sequential order.
            loop {
                debug_check_monotonic(&mut clock, env.recv_time);
                debug_assert!(env.recv_time >= self.meta[dst].now, "causality violation");
                self.meta[dst].now = env.recv_time;
                self.meta[dst].processed += 1;
                let trace = tbuf.as_mut().map(|b| {
                    (self.lps[dst].trace_kind(&env), b.event_start(), self.meta[dst].uid_seq)
                });

                let mut ctx = Ctx {
                    now: env.recv_time,
                    me: env.dst,
                    lookahead: self.lookahead,
                    out: &mut out,
                };
                self.lps[dst].handle(&env, &mut ctx);
                stats.committed += 1;

                for o in out.drain(..) {
                    let meta = &mut self.meta[dst];
                    let new = Envelope {
                        recv_time: env.recv_time + o.delay,
                        send_time: env.recv_time,
                        src: env.dst,
                        dst: o.dst,
                        tiebreak: meta.tiebreak,
                        uid: EventUid { src: env.dst, seq: meta.uid_seq },
                        payload: o.payload,
                    };
                    meta.tiebreak += 1;
                    meta.uid_seq += 1;
                    debug_assert!(
                        (o.dst as usize) < self.lps.len(),
                        "send to unknown LP {}",
                        o.dst
                    );
                    self.pending.push(new);
                }
                if let (Some(b), Some((kind, t0, uid_lo))) = (tbuf.as_mut(), trace) {
                    let children = (self.meta[dst].uid_seq - uid_lo) as u32;
                    b.record(&env, uid_lo, children, kind, t0);
                }
                match self.pending.peek() {
                    Some(next) if next.dst as usize == dst && next.recv_time <= until => {
                        env = self.pending.pop().expect("peeked event vanished");
                    }
                    Some(next) if next.recv_time <= until => {
                        // Different LP up next: its per-LP state and model
                        // struct are random slots in two big arrays — start
                        // pulling them in while this batch's trace/loop
                        // bookkeeping retires.
                        let nd = next.dst as usize;
                        if nd < self.lps.len() {
                            crate::pool::prefetch_read(&self.meta[nd]);
                            crate::pool::prefetch_read(&self.lps[nd]);
                        }
                        break;
                    }
                    _ => break,
                }
            }
            // Live flush at batch granularity, never per event: one branch
            // per outer iteration keeps the detached cost inside the <2%
            // overhead gate.
            if let Some(t) = tap.as_mut() {
                t.commit(stats.committed - flushed_committed);
                flushed_committed = stats.committed;
                if t.pending_committed() >= crate::live::FLUSH_EVERY {
                    t.gvt(clock.as_ns());
                    t.queue_depth(self.pending.len() as u64);
                    t.flush();
                }
            }
            // And one full event of distance: the outer loop pops the next
            // event immediately, so the event *after* it is the one whose
            // LP state has a whole handler's worth of time to arrive.
            if let Some(n2) = self.pending.peek2() {
                let d2 = n2.dst as usize;
                if d2 < self.lps.len() {
                    crate::pool::prefetch_read(&self.meta[d2]);
                    crate::pool::prefetch_read(&self.lps[d2]);
                }
            }
        }

        stats.rounds = 1;
        stats.end_time = clock;
        stats.wall_seconds = start.elapsed().as_secs_f64();
        if let Some(t) = tap.as_mut() {
            t.commit(stats.committed - flushed_committed);
            t.round();
            t.gvt(clock.as_ns());
            t.queue_depth(self.pending.len() as u64);
            t.pool_high_water(self.pending.pool_stats().high_water);
            t.flush();
        }
        let wall_ns = start.elapsed().as_nanos() as u64;
        if let (Some(tr), Some(buf)) = (self.tracer.as_ref(), tbuf) {
            let run = buf.run();
            tr.submit(buf);
            tr.close_run(run, wall_ns, stats.end_time.as_ns());
        }
        emit_sched_telemetry(
            self.telemetry.as_deref(),
            "sequential",
            1,
            &stats,
            0,
            QueueTelemetry {
                kind: self.queue,
                ops: self.pending.ops(),
                max_len: self.pending.max_len(),
                pool: self.pending.pool_stats(),
            },
            vec![telemetry::ThreadRecord {
                thread: 0,
                events: stats.committed,
                busy_ns: wall_ns,
                ..Default::default()
            }],
        );
        stats
    }
}

/// Queue counters folded into a run's scheduler record. The parallel
/// schedulers sum `ops` (and `pool.recycled`) and take the max of
/// `max_len` / `pool.high_water` across their per-thread queues.
pub(crate) struct QueueTelemetry {
    pub(crate) kind: QueueKind,
    pub(crate) ops: u64,
    pub(crate) max_len: u64,
    pub(crate) pool: crate::pool::PoolStats,
}

impl QueueTelemetry {
    /// Identity for folding per-thread queues.
    pub(crate) fn empty(kind: QueueKind) -> Self {
        QueueTelemetry { kind, ops: 0, max_len: 0, pool: crate::pool::PoolStats::default() }
    }
}

/// Shared tail of every scheduler: fold the run counters and the workers'
/// thread records into one `scheduler` telemetry record. No-op when no
/// recorder is attached.
pub(crate) fn emit_sched_telemetry(
    telem: Option<&telemetry::Recorder>,
    name: &str,
    threads: usize,
    stats: &RunStats,
    max_gvt_lag_ns: u64,
    queue: QueueTelemetry,
    mut per_thread: Vec<telemetry::ThreadRecord>,
) {
    let Some(rec) = telem else { return };
    let wall_ns = (stats.wall_seconds * 1e9) as u64;
    per_thread.sort_by_key(|t| t.thread);
    for t in per_thread.iter_mut() {
        t.idle_ns = wall_ns.saturating_sub(t.busy_ns + t.blocked_ns);
    }
    let mut r = telemetry::SchedulerRecord::new(name, threads);
    r.queue = queue.kind.label().to_string();
    r.queue_ops = queue.ops;
    r.queue_max_len = queue.max_len;
    r.pool_high_water = queue.pool.high_water;
    r.pool_recycled = queue.pool.recycled;
    r.committed = stats.committed;
    r.rolled_back = stats.rolled_back;
    r.rollbacks = stats.rollbacks;
    r.anti_messages = stats.anti_messages;
    r.annihilated = stats.annihilated;
    r.remote_events = stats.remote_events;
    r.cross_shard_events = stats.cross_shard_events;
    r.rounds = stats.rounds;
    r.steals = stats.steals;
    r.horizon_stall_ns = stats.horizon_stall_ns;
    r.horizon_lag_max = stats.horizon_lag_max;
    r.max_gvt_lag_ns = max_gvt_lag_ns;
    r.end_time_ns = stats.end_time.as_ns();
    r.wall_ns = wall_ns;
    r.per_thread = per_thread;
    rec.emit(&r);
}

/// Debug guard on dequeue order: timestamps pulled off an in-order event
/// queue must be non-decreasing, and a violation means the `Ord` on
/// [`Envelope`] (or a scheduler's merge of queues) regressed. Advances
/// `last` to `t` so callers can use it as their running clock.
#[inline]
pub(crate) fn debug_check_monotonic(last: &mut SimTime, t: SimTime) {
    debug_assert!(t >= *last, "non-monotonic dequeue: {} ns after {} ns", t.as_ns(), last.as_ns());
    *last = t;
}

/// Helper shared by the parallel schedulers: turn buffered outgoing sends
/// into envelopes, updating the sender's meta counters.
pub(crate) fn seal_outgoing<E>(
    src: LpId,
    send_time: SimTime,
    meta: &mut LpMeta,
    out: &mut Vec<Outgoing<E>>,
    mut push: impl FnMut(Envelope<E>),
) {
    for o in out.drain(..) {
        let env = Envelope {
            recv_time: send_time + o.delay,
            send_time,
            src,
            dst: o.dst,
            tiebreak: meta.tiebreak,
            uid: EventUid { src, seq: meta.uid_seq },
            payload: o.payload,
        };
        meta.tiebreak += 1;
        meta.uid_seq += 1;
        push(env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_dequeue_advances_the_clock() {
        let mut clock = SimTime::ZERO;
        debug_check_monotonic(&mut clock, SimTime::from_ns(5));
        debug_check_monotonic(&mut clock, SimTime::from_ns(5));
        debug_check_monotonic(&mut clock, SimTime::from_ns(9));
        assert_eq!(clock, SimTime::from_ns(9));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-monotonic")]
    fn decreasing_dequeue_timestamp_is_caught() {
        let mut clock = SimTime::from_ns(10);
        debug_check_monotonic(&mut clock, SimTime::from_ns(9));
    }
}
