//! Wiring between the schedulers and the live metrics plane
//! ([`telemetry::live`]).
//!
//! Schedulers never touch the registry on per-event hot paths: each worker
//! thread owns a [`LiveTap`] — plain local counters plus shard-private
//! handles — and flushes it at the scheduler's natural synchronization
//! cadence (per window/round/GVT epoch, or every
//! [`FLUSH_EVERY`] committed events on the sequential path). A detached
//! registry costs one `Option` branch at those same coarse points, which
//! is what keeps the <2% overhead guard honest.

use std::sync::Arc;
use telemetry::live::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};

/// Sequential-scheduler flush cadence in committed events. Parallel
/// schedulers flush at their own sync points instead.
pub(crate) const FLUSH_EVERY: u64 = 8192;

/// Sharded handles for every engine metric the schedulers feed. One per
/// run; [`LiveHandles::tap`] clones it onto a worker's shard.
pub(crate) struct LiveHandles {
    committed: CounterHandle,
    rolled_back: CounterHandle,
    rollbacks: CounterHandle,
    anti_messages: CounterHandle,
    remote_events: CounterHandle,
    cross_shard_events: CounterHandle,
    rounds: CounterHandle,
    steals: CounterHandle,
    gvt_ns: GaugeHandle,
    horizon_lag_ns: GaugeHandle,
    queue_depth: GaugeHandle,
    pool_high_water: GaugeHandle,
    workers: GaugeHandle,
    commit_batch: HistogramHandle,
    queue_depth_hist: HistogramHandle,
}

impl LiveHandles {
    pub(crate) fn new(reg: &MetricsRegistry, threads: usize) -> Arc<LiveHandles> {
        let h = LiveHandles {
            committed: reg.counter("events_committed"),
            rolled_back: reg.counter("events_rolled_back"),
            rollbacks: reg.counter("rollbacks"),
            anti_messages: reg.counter("anti_messages"),
            remote_events: reg.counter("remote_events"),
            cross_shard_events: reg.counter("cross_shard_events"),
            rounds: reg.counter("rounds"),
            steals: reg.counter("steals"),
            gvt_ns: reg.gauge("gvt_ns"),
            horizon_lag_ns: reg.gauge("horizon_lag_ns"),
            queue_depth: reg.gauge("queue_depth"),
            pool_high_water: reg.gauge("pool_high_water"),
            workers: reg.gauge("workers"),
            commit_batch: reg.histogram("commit_batch"),
            queue_depth_hist: reg.histogram("queue_depth"),
        };
        h.workers.set(threads as u64);
        Arc::new(h)
    }

    /// From a simulation's optional registry: handles for a run about to
    /// start on `threads` workers.
    pub(crate) fn from_sim(
        reg: &Option<Arc<MetricsRegistry>>,
        threads: usize,
    ) -> Option<Arc<LiveHandles>> {
        reg.as_ref().map(|r| LiveHandles::new(r, threads))
    }

    /// A worker-private tap recording through shard `shard`.
    pub(crate) fn tap(self: &Arc<LiveHandles>, shard: usize) -> LiveTap {
        LiveTap {
            committed: self.committed.for_shard(shard),
            rolled_back: self.rolled_back.for_shard(shard),
            rollbacks: self.rollbacks.for_shard(shard),
            anti_messages: self.anti_messages.for_shard(shard),
            remote_events: self.remote_events.for_shard(shard),
            cross_shard_events: self.cross_shard_events.for_shard(shard),
            rounds: self.rounds.for_shard(shard),
            steals: self.steals.for_shard(shard),
            gvt_ns: self.gvt_ns.clone(),
            horizon_lag_ns: self.horizon_lag_ns.clone(),
            queue_depth: self.queue_depth.clone(),
            pool_high_water: self.pool_high_water.clone(),
            commit_batch: self.commit_batch.for_shard(shard),
            queue_depth_hist: self.queue_depth_hist.for_shard(shard),
            d: PendingDeltas::default(),
        }
    }
}

/// Local deltas accumulated between flushes — plain integers, no atomics.
#[derive(Default)]
struct PendingDeltas {
    committed: u64,
    rolled_back: u64,
    rollbacks: u64,
    anti_messages: u64,
    remote_events: u64,
    cross_shard_events: u64,
    rounds: u64,
    steals: u64,
}

/// One worker thread's view of the live registry. All mutation lands in
/// [`PendingDeltas`]; [`LiveTap::flush`] pushes the deltas through the
/// shard-private wait-free handles.
pub(crate) struct LiveTap {
    committed: CounterHandle,
    rolled_back: CounterHandle,
    rollbacks: CounterHandle,
    anti_messages: CounterHandle,
    remote_events: CounterHandle,
    cross_shard_events: CounterHandle,
    rounds: CounterHandle,
    steals: CounterHandle,
    gvt_ns: GaugeHandle,
    horizon_lag_ns: GaugeHandle,
    queue_depth: GaugeHandle,
    pool_high_water: GaugeHandle,
    commit_batch: HistogramHandle,
    queue_depth_hist: HistogramHandle,
    d: PendingDeltas,
}

impl LiveTap {
    #[inline]
    pub(crate) fn commit(&mut self, n: u64) {
        self.d.committed += n;
    }

    /// Committed events accumulated since the last flush (the sequential
    /// scheduler's flush trigger).
    #[inline]
    pub(crate) fn pending_committed(&self) -> u64 {
        self.d.committed
    }

    pub(crate) fn roll_back(&mut self, events: u64, episodes: u64) {
        self.d.rolled_back += events;
        self.d.rollbacks += episodes;
    }

    pub(crate) fn anti_message(&mut self, n: u64) {
        self.d.anti_messages += n;
    }

    pub(crate) fn remote(&mut self, n: u64) {
        self.d.remote_events += n;
    }

    pub(crate) fn cross_shard(&mut self, n: u64) {
        self.d.cross_shard_events += n;
    }

    pub(crate) fn round(&mut self) {
        self.d.rounds += 1;
    }

    pub(crate) fn steal(&mut self, n: u64) {
        self.d.steals += n;
    }

    /// Latest global clock (GVT / window floor / horizon) — leader only.
    pub(crate) fn gvt(&self, ns: u64) {
        self.gvt_ns.set(ns);
    }

    /// High-water of (max published horizon − min published horizon) or
    /// (local min − GVT) lag.
    pub(crate) fn lag(&self, ns: u64) {
        self.horizon_lag_ns.observe_max(ns);
    }

    /// Current pending-queue depth: latest-value gauge plus distribution.
    pub(crate) fn queue_depth(&mut self, len: u64) {
        self.queue_depth.set(len);
        self.queue_depth_hist.record(len);
    }

    pub(crate) fn pool_high_water(&self, v: u64) {
        self.pool_high_water.observe_max(v);
    }

    /// Push accumulated deltas through the handles and reset them. The
    /// committed delta also lands in the `commit_batch` histogram — the
    /// distribution of work per flush window.
    pub(crate) fn flush(&mut self) {
        let d = std::mem::take(&mut self.d);
        if d.committed > 0 {
            self.committed.add(d.committed);
            self.commit_batch.record(d.committed);
        }
        if d.rolled_back > 0 {
            self.rolled_back.add(d.rolled_back);
        }
        if d.rollbacks > 0 {
            self.rollbacks.add(d.rollbacks);
        }
        if d.anti_messages > 0 {
            self.anti_messages.add(d.anti_messages);
        }
        if d.remote_events > 0 {
            self.remote_events.add(d.remote_events);
        }
        if d.cross_shard_events > 0 {
            self.cross_shard_events.add(d.cross_shard_events);
        }
        if d.rounds > 0 {
            self.rounds.add(d.rounds);
        }
        if d.steals > 0 {
            self.steals.add(d.steals);
        }
    }
}

impl Drop for LiveTap {
    /// A tap that goes out of scope flushes its remainder, so end-of-run
    /// totals are exact on every exit path.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_flushes_deltas_and_drop_flushes_remainder() {
        let reg = Arc::new(MetricsRegistry::with_shards(2));
        let handles = LiveHandles::from_sim(&Some(Arc::clone(&reg)), 2).unwrap();
        let mut a = handles.tap(0);
        let mut b = handles.tap(1);
        a.commit(10);
        a.round();
        a.flush();
        b.commit(32);
        drop(b); // drop must flush the un-flushed 32
        drop(a);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("events_committed"), Some(42));
        assert_eq!(snap.counter_total("rounds"), Some(1));
        assert_eq!(snap.gauge("workers"), Some(2));
        let h = snap.histogram("commit_batch").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 42);
    }
}
