//! Lock-free multi-producer/single-consumer mailbox for cross-partition
//! event exchange.
//!
//! A Treiber stack of heap nodes: producers CAS onto `head`, the owning
//! consumer swaps the whole chain out at a synchronization point and
//! drains it. Arrival order is whatever the CAS race produced — that is
//! fine because every drained event goes into a `BinaryHeap` keyed by
//! the total event order, so processing order (and therefore results)
//! do not depend on push interleaving.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    item: T,
    next: *mut Node<T>,
}

pub(crate) struct Mailbox<T> {
    head: AtomicPtr<Node<T>>,
}

// The raw pointers only ever refer to boxed nodes owned by the stack.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Mailbox<T> {
    pub(crate) fn new() -> Mailbox<T> {
        Mailbox { head: AtomicPtr::new(ptr::null_mut()) }
    }

    /// Push one item; callable concurrently from any thread.
    pub(crate) fn push(&self, item: T) {
        let node = Box::into_raw(Box::new(Node { item, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: `node` came from Box::into_raw above and is not yet
            // shared with any other thread.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Take every item currently in the mailbox. Intended for the owning
    /// consumer at a synchronization point; concurrent pushes that lose
    /// the race simply land in the next drain.
    pub(crate) fn drain_into(&self, out: &mut Vec<T>) {
        let mut cur = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        while !cur.is_null() {
            // Safety: we own the whole detached chain exclusively.
            let node = unsafe { Box::from_raw(cur) };
            out.push(node.item);
            cur = node.next;
        }
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // Safety: drop has exclusive access.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delivers_everything_under_contention() {
        let mb = Arc::new(Mailbox::new());
        let producers = 8;
        let per = 1000u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..per {
                        mb.push(p * per + i);
                    }
                });
            }
        });
        let mut got = Vec::new();
        mb.drain_into(&mut got);
        got.sort_unstable();
        let expect: Vec<u64> = (0..producers * per).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn drain_while_pushing_loses_nothing() {
        let mb = Arc::new(Mailbox::new());
        let total = 10_000u64;
        let mut got = Vec::new();
        std::thread::scope(|s| {
            let producer = {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..total {
                        mb.push(i);
                    }
                })
            };
            // Interleave drains with the producer.
            while !producer.is_finished() {
                mb.drain_into(&mut got);
            }
        });
        mb.drain_into(&mut got);
        got.sort_unstable();
        let expect: Vec<u64> = (0..total).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn drop_frees_undrained_items() {
        // Items with Drop: leak detection via Arc counts.
        let marker = Arc::new(());
        {
            let mb = Mailbox::new();
            for _ in 0..100 {
                mb.push(Arc::clone(&marker));
            }
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }
}
