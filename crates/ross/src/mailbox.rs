//! Lock-free multi-producer/single-consumer mailbox for cross-partition
//! event exchange.
//!
//! A Treiber stack of heap nodes: producers CAS onto `head`, the owning
//! consumer swaps the whole chain out at a synchronization point and
//! drains it. Arrival order is whatever the CAS race produced — that is
//! fine because every drained event goes into a pending-event queue keyed
//! by the total event order, so processing order (and therefore results)
//! do not depend on push interleaving.
//!
//! The parallel scheduler instantiates `T = Vec<Envelope<_>>` — each node
//! carries a *chunk* of up to [`crate::parallel::MAILBOX_CHUNK`] events —
//! so the per-event cost of the CAS and node allocation is amortized and
//! the consumer ingests contiguous runs. The exactly-once delivery
//! invariant below then counts chunks, which implies it for events
//! (chunks are never split or merged in flight).
//!
//! All synchronization goes through `crate::sync`, so under
//! `cfg(union_check)` the whole protocol runs on `ross-check`'s controlled
//! scheduler: node payloads live in race-detected cells, and the checked
//! build additionally keeps push/drain delivery counters (plain std
//! atomics, invisible to the controlled scheduler) whose teardown
//! invariant — every pushed item is consumed exactly once — is asserted
//! on every explored interleaving.

use crate::sync::atomic::{AtomicPtr, Ordering};
use crate::sync::UnsafeCell;
use std::mem::ManuallyDrop;
use std::ptr;

struct Node<T> {
    item: UnsafeCell<ManuallyDrop<T>>,
    next: UnsafeCell<*mut Node<T>>,
}

pub(crate) struct Mailbox<T> {
    head: AtomicPtr<Node<T>>,
    /// Delivery accounting, checked builds only. Plain std atomics on
    /// purpose: they must not perturb the controlled schedule.
    #[cfg(union_check)]
    pushed: std::sync::atomic::AtomicU64,
    #[cfg(union_check)]
    drained: std::sync::atomic::AtomicU64,
}

// The raw pointers only ever refer to boxed nodes owned by the stack.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Mailbox<T> {
    pub(crate) fn new() -> Mailbox<T> {
        Mailbox {
            head: AtomicPtr::new(ptr::null_mut()),
            #[cfg(union_check)]
            pushed: std::sync::atomic::AtomicU64::new(0),
            #[cfg(union_check)]
            drained: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Push one item; callable concurrently from any thread.
    pub(crate) fn push(&self, item: T) {
        let node = Box::into_raw(Box::new(Node {
            item: UnsafeCell::new(ManuallyDrop::new(item)),
            next: UnsafeCell::new(ptr::null_mut()),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: `node` came from Box::into_raw above and is not yet
            // shared with any other thread.
            unsafe { (*node).next.with_mut(|p| *p = head) };
            match self.head.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        #[cfg(union_check)]
        self.pushed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether any item is currently queued. Used by the async scheduler's
    /// parking re-check (a racing push that this load misses is caught by
    /// the pusher's subsequent parked-flag swap — see `asynchronous.rs`).
    pub(crate) fn has_mail(&self) -> bool {
        !self.head.load(Ordering::SeqCst).is_null()
    }

    /// Take every item currently in the mailbox. Intended for the owning
    /// consumer at a synchronization point; concurrent pushes that lose
    /// the race simply land in the next drain.
    pub(crate) fn drain_into(&self, out: &mut Vec<T>) {
        let mut cur = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        while !cur.is_null() {
            // Safety: we own the whole detached chain exclusively; each
            // payload is taken exactly once.
            let node = unsafe { Box::from_raw(cur) };
            let item = node.item.with_mut(|i| unsafe { ManuallyDrop::take(&mut *i) });
            cur = node.next.with(|n| unsafe { *n });
            out.push(item);
            #[cfg(union_check)]
            self.drained.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        let mut leftover = 0u64;
        let mut cur = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        while !cur.is_null() {
            // Safety: drop has exclusive access; each leftover payload is
            // dropped exactly once.
            let node = unsafe { Box::from_raw(cur) };
            node.item.with_mut(|i| unsafe { ManuallyDrop::drop(&mut *i) });
            cur = node.next.with(|n| unsafe { *n });
            leftover += 1;
        }
        let _ = leftover;
        #[cfg(union_check)]
        {
            let pushed = self.pushed.load(std::sync::atomic::Ordering::Relaxed);
            let drained = self.drained.load(std::sync::atomic::Ordering::Relaxed);
            assert_eq!(
                pushed,
                drained + leftover,
                "mailbox delivery invariant violated: {pushed} pushed, {drained} drained, \
                 {leftover} left at teardown (an event was dropped or double-delivered)"
            );
        }
    }
}

#[cfg(all(test, not(union_check)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delivers_everything_under_contention() {
        let mb = Arc::new(Mailbox::new());
        let producers = 8;
        let per = 1000u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..per {
                        mb.push(p * per + i);
                    }
                });
            }
        });
        let mut got = Vec::new();
        mb.drain_into(&mut got);
        got.sort_unstable();
        let expect: Vec<u64> = (0..producers * per).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn drain_while_pushing_loses_nothing() {
        let mb = Arc::new(Mailbox::new());
        let total = 10_000u64;
        let mut got = Vec::new();
        std::thread::scope(|s| {
            let producer = {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..total {
                        mb.push(i);
                    }
                })
            };
            // Interleave drains with the producer.
            while !producer.is_finished() {
                mb.drain_into(&mut got);
            }
        });
        mb.drain_into(&mut got);
        got.sort_unstable();
        let expect: Vec<u64> = (0..total).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn drop_frees_undrained_items() {
        // Items with Drop: leak detection via Arc counts.
        let marker = Arc::new(());
        {
            let mb = Mailbox::new();
            for _ in 0..100 {
                mb.push(Arc::clone(&marker));
            }
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    /// Interleaved multi-producer push/drain property test: tagged items,
    /// no loss, no duplication, and per-producer FIFO order. Drain batches
    /// come out LIFO (Treiber stack), so each *reversed* batch restricted
    /// to one producer is an ascending run; batches are temporally ordered
    /// by their detach (swap) point, so the concatenation of reversed
    /// batches restricted to a producer must be exactly `0..per` in order.
    mod properties {
        use super::super::Mailbox;
        use proptest::prelude::*;
        use std::sync::Arc;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn interleaved_push_drain_no_loss_no_dup_per_producer_fifo(
                producers in 1usize..4,
                per in 1u64..400,
            ) {
                let mb = Arc::new(Mailbox::new());
                let total = producers as u64 * per;
                let mut batches: Vec<Vec<(usize, u64)>> = Vec::new();
                std::thread::scope(|s| {
                    for p in 0..producers {
                        let mb = Arc::clone(&mb);
                        s.spawn(move || {
                            for i in 0..per {
                                mb.push((p, i));
                            }
                        });
                    }
                    // Consume on this thread, interleaved with the pushes:
                    // drain until every tagged item is accounted for (the
                    // producers are guaranteed to finish, so absent loss
                    // this terminates; loss would hang — backstopped by
                    // the count assertions below via the batch tally).
                    let mut seen = 0u64;
                    while seen < total {
                        let mut batch = Vec::new();
                        mb.drain_into(&mut batch);
                        seen += batch.len() as u64;
                        if !batch.is_empty() {
                            batches.push(batch);
                        }
                    }
                });
                let mut next = vec![0u64; producers];
                for batch in &batches {
                    for &(p, i) in batch.iter().rev() {
                        prop_assert!(
                            i == next[p],
                            "producer {} out of order or duplicated: got {}, expected {}",
                            p, i, next[p]
                        );
                        next[p] += 1;
                    }
                }
                for (p, n) in next.iter().enumerate() {
                    prop_assert!(*n == per, "producer {} delivered {} of {}", p, n, per);
                }
            }
        }
    }
}
