//! Event-level causal tracing.
//!
//! A [`Tracer`] records, for every executed event, enough metadata to
//! rebuild the event dependency DAG after the run: the executing LP, the
//! event's `(recv_time, send_time, src)` coordinates, its uid, the range
//! of uid sequence numbers handed to the events it sent (its children),
//! a model-supplied kind tag ([`crate::Lp::trace_kind`]) and a sampled
//! handler duration. Scheduler phases (GVT, fossil collection, rollback,
//! barrier waits) are recorded as wall-clock spans per worker thread.
//!
//! ## Parent linkage
//!
//! Envelopes are not widened for tracing. Instead each execution record
//! stores `child_lo` — the sender's never-rolled-back `uid_seq` counter
//! *before* the handler ran — and `children`, the number of sends sealed
//! by that execution. A child event with uid `(src, seq)` belongs to the
//! committed execution of `src` whose `[child_lo, child_lo + children)`
//! range contains `seq`. Coast-forward replays burn fresh `uid_seq`
//! values with sends suppressed, so a replay's range claims no in-flight
//! child and the original (still committed) execution record keeps the
//! linkage.
//!
//! ## Wasted work (optimistic scheduler)
//!
//! Rollback appends one *mark* per undone execution. At export time an
//! event uid with `n` execution records and `m` marks is committed iff
//! `n > m`, and the committed record is the last one in its owning
//! thread's buffer (an LP lives on exactly one thread for the whole
//! run). Everything else is wasted work, colour-tagged in the Chrome
//! export and charged to its kind/app by the critical-path analyzer.
//!
//! ## Cost model
//!
//! With no tracer attached schedulers pay one `Option` test per event.
//! When attached, each worker owns a [`TraceBuf`] and pays two `Vec`
//! pushes plus (every `sample_rate` events) two clock reads; buffers
//! drain into the shared [`Tracer`] once per run. Capacity is bounded:
//! worker buffers draw event/span budget from shared atomics in chunks,
//! and once the budget is gone records are counted as dropped rather
//! than allocated.

use crate::event::{Envelope, EventUid};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default cap on stored event records across the tracer's lifetime.
pub const DEFAULT_EVENT_CAP: u64 = 1 << 20;
/// Default cap on stored span records across the tracer's lifetime.
pub const DEFAULT_SPAN_CAP: u64 = 1 << 18;
/// Budget is drawn from the shared counters in chunks so the hot path
/// touches an atomic once per `CHUNK` records, not once per record.
const EVENT_CHUNK: u64 = 4096;
const SPAN_CHUNK: u64 = 256;

/// One executed-event record. All times are nanoseconds; virtual times
/// (`recv_ns`, `send_ns`) come from the simulation clock, `dur_ns` from
/// the wall clock (sampled — see [`Tracer::new`]).
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Executing (destination) LP.
    pub lp: u32,
    /// Sending LP.
    pub src: u32,
    /// Model-defined kind tag ([`crate::Lp::trace_kind`]).
    pub kind: u16,
    /// Virtual receive time.
    pub recv_ns: u64,
    /// Virtual send time.
    pub send_ns: u64,
    /// Event uid (sender LP, never-rolled-back sequence number).
    pub uid_src: u32,
    pub uid_seq: u64,
    /// Sender-side uid counter before the handler ran: the events this
    /// execution sent carry seqs in `[child_lo, child_lo + children)`.
    pub child_lo: u64,
    /// Number of events this execution sent.
    pub children: u32,
    /// Handler duration (measured every `sample_rate` events; in between,
    /// the thread's last measured value is carried forward).
    pub dur_ns: u64,
}

/// Scheduler phases recorded as wall-clock spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// GVT computation (optimistic) including its two barriers.
    Gvt,
    /// Fossil collection below GVT.
    Fossil,
    /// One rollback episode (restore + coast-forward).
    Rollback,
    /// Barrier / quiescence wait (conservative rounds, optimistic drain).
    Barrier,
}

impl SpanKind {
    /// Stable lowercase label used in the Chrome export.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Gvt => "gvt",
            SpanKind::Fossil => "fossil",
            SpanKind::Rollback => "rollback",
            SpanKind::Barrier => "barrier",
        }
    }

    /// Chrome trace-viewer colour name; rollbacks scream red.
    fn cname(self) -> &'static str {
        match self {
            SpanKind::Gvt => "good",
            SpanKind::Fossil => "grey",
            SpanKind::Rollback => "terrible",
            SpanKind::Barrier => "bad",
        }
    }
}

/// One scheduler-phase span, wall-clock, relative to the tracer epoch.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpan {
    pub kind: SpanKind,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Per-run metadata kept by the tracer.
struct RunMeta {
    label: String,
    sched: String,
    threads: usize,
    wall_ns: u64,
    end_ns: u64,
    /// Per-LP track names (index = LP id); empty → "lp N".
    lp_names: Vec<String>,
    /// Kind-tag names (index = kind); empty → "event".
    kind_names: Vec<String>,
}

/// A worker buffer handed back to the tracer at the end of a run.
struct SubmittedBuf {
    run: u32,
    thread: u32,
    events: Vec<TraceEvent>,
    marks: Vec<EventUid>,
    spans: Vec<TraceSpan>,
}

#[derive(Default)]
struct Inner {
    runs: Vec<RunMeta>,
    bufs: Vec<SubmittedBuf>,
    /// Staged by the model layer, consumed by the next `open_run`.
    next_label: Option<String>,
    next_lp_names: Vec<String>,
    next_kind_names: Vec<String>,
}

/// Shared causal-event tracer. Attach with
/// [`crate::Simulation::set_tracer`]; export with
/// [`Tracer::to_chrome_json`].
pub struct Tracer {
    sample_rate: u32,
    start: Instant,
    event_budget: Arc<AtomicI64>,
    span_budget: Arc<AtomicI64>,
    events_dropped: AtomicU64,
    spans_dropped: AtomicU64,
    next_run: AtomicU32,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sample_rate", &self.sample_rate)
            .field("events", &self.event_count())
            .field("events_dropped", &self.events_dropped())
            .finish()
    }
}

impl Tracer {
    /// A tracer measuring handler duration on every `sample_rate`-th
    /// event per thread (1 = every event) with default capacity caps.
    pub fn new(sample_rate: u32) -> Self {
        Tracer::with_caps(sample_rate, DEFAULT_EVENT_CAP, DEFAULT_SPAN_CAP)
    }

    /// [`Tracer::new`] with explicit event/span record caps. Once a cap
    /// is reached further records are counted in
    /// [`Tracer::events_dropped`] / [`Tracer::spans_dropped`] and the
    /// Chrome export carries the counts in `otherData`.
    pub fn with_caps(sample_rate: u32, event_cap: u64, span_cap: u64) -> Self {
        Tracer {
            sample_rate: sample_rate.max(1),
            start: Instant::now(),
            event_budget: Arc::new(AtomicI64::new(event_cap.min(i64::MAX as u64) as i64)),
            span_budget: Arc::new(AtomicI64::new(span_cap.min(i64::MAX as u64) as i64)),
            events_dropped: AtomicU64::new(0),
            spans_dropped: AtomicU64::new(0),
            next_run: AtomicU32::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Duration-sampling divisor (≥ 1).
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Stage a human-readable label (e.g. a sweep key) for the next run.
    pub fn label_next_run(&self, label: &str) {
        self.inner.lock().next_label = Some(label.to_string());
    }

    /// Stage per-LP track names for the next run (index = LP id).
    pub fn stage_lp_names(&self, names: Vec<String>) {
        self.inner.lock().next_lp_names = names;
    }

    /// Stage kind-tag names for the next run (index = kind tag).
    pub fn stage_kind_names(&self, names: Vec<String>) {
        self.inner.lock().next_kind_names = names;
    }

    /// Replace the LP track names of the most recently opened run — lets
    /// a model refresh labels with end-of-run state (e.g. a rank that
    /// finished vs. one that blocked).
    pub fn refresh_lp_names(&self, names: Vec<String>) {
        let mut inner = self.inner.lock();
        if let Some(run) = inner.runs.last_mut() {
            run.lp_names = names;
        }
    }

    /// Called by a scheduler at run start; consumes any staged label and
    /// names. Returns the run id workers pass to [`Tracer::buf`].
    pub fn open_run(&self, sched: &str, threads: usize) -> u32 {
        let run = self.next_run.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let label = inner.next_label.take().unwrap_or_default();
        let lp_names = std::mem::take(&mut inner.next_lp_names);
        let kind_names = std::mem::take(&mut inner.next_kind_names);
        inner.runs.push(RunMeta {
            label,
            sched: sched.to_string(),
            threads,
            wall_ns: 0,
            end_ns: 0,
            lp_names,
            kind_names,
        });
        run
    }

    /// Called by a scheduler after all workers submitted their buffers.
    pub fn close_run(&self, run: u32, wall_ns: u64, end_ns: u64) {
        let mut inner = self.inner.lock();
        if let Some(meta) = inner.runs.get_mut(run as usize) {
            meta.wall_ns = wall_ns;
            meta.end_ns = end_ns;
        }
    }

    /// A fresh per-worker buffer for `run`. Cheap: two `Arc` clones.
    pub fn buf(&self, run: u32, thread: u32) -> TraceBuf {
        TraceBuf {
            run,
            thread,
            start: self.start,
            rate: self.sample_rate,
            countdown: 1,
            dry: false,
            last_dur: 0,
            event_credit: 0,
            span_credit: 0,
            dropped_events: 0,
            dropped_spans: 0,
            event_budget: Arc::clone(&self.event_budget),
            span_budget: Arc::clone(&self.span_budget),
            events: Vec::new(),
            marks: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Hand a worker buffer back. Folds the worker's drop counters into
    /// the tracer totals.
    pub fn submit(&self, buf: TraceBuf) {
        self.events_dropped.fetch_add(buf.dropped_events, Ordering::Relaxed);
        self.spans_dropped.fetch_add(buf.dropped_spans, Ordering::Relaxed);
        self.inner.lock().bufs.push(SubmittedBuf {
            run: buf.run,
            thread: buf.thread,
            events: buf.events,
            marks: buf.marks,
            spans: buf.spans,
        });
    }

    /// Event records lost to the capacity cap.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    /// Span records lost to the capacity cap.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.load(Ordering::Relaxed)
    }

    /// Total stored event records across all runs.
    pub fn event_count(&self) -> usize {
        self.inner.lock().bufs.iter().map(|b| b.events.len()).sum()
    }

    /// Nanoseconds since the tracer was created (the span epoch).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Export everything recorded so far as Chrome trace-event JSON
    /// (loadable in Perfetto / chrome://tracing).
    ///
    /// Each run becomes two processes: pid `2*run` holds one track per
    /// LP on the *virtual* timeline (`ts` = recv time), pid `2*run + 1`
    /// holds one track per worker thread on the *wall* timeline with the
    /// scheduler-phase spans (rollbacks colour-tagged red). Events the
    /// optimistic scheduler rolled back are tagged `"w":1` and coloured
    /// red on their LP track. A `union_run` metadata record per run
    /// carries the label, scheduler, thread count, wall time, final
    /// virtual time and sample rate.
    pub fn to_chrome_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out =
            String::with_capacity(256 + inner.bufs.iter().map(buf_estimate).sum::<usize>());
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (run, meta) in inner.runs.iter().enumerate() {
            let run = run as u32;
            let mut bufs: Vec<&SubmittedBuf> = inner.bufs.iter().filter(|b| b.run == run).collect();
            bufs.sort_by_key(|b| b.thread);
            let committed = resolve_committed(&bufs);
            let vpid = 2 * run;
            let spid = 2 * run + 1;
            let label = if meta.label.is_empty() { "run".to_string() } else { meta.label.clone() };

            // Process / thread metadata.
            push_meta(
                &mut out,
                &mut first,
                vpid,
                0,
                "process_name",
                &format!("run {run} · {label} · {}:{} · virtual time", meta.sched, meta.threads),
            );
            push_meta(
                &mut out,
                &mut first,
                spid,
                0,
                "process_name",
                &format!("run {run} · {label} · scheduler (wall)"),
            );
            let mut lp_seen: Vec<u32> =
                bufs.iter().flat_map(|b| b.events.iter().map(|e| e.lp)).collect();
            lp_seen.sort_unstable();
            lp_seen.dedup();
            for &lp in &lp_seen {
                let name =
                    meta.lp_names.get(lp as usize).cloned().unwrap_or_else(|| format!("lp {lp}"));
                push_meta(&mut out, &mut first, vpid, lp, "thread_name", &name);
            }
            for b in &bufs {
                if !b.spans.is_empty() {
                    push_meta(
                        &mut out,
                        &mut first,
                        spid,
                        b.thread,
                        "thread_name",
                        &format!("worker {}", b.thread),
                    );
                }
            }
            // Run descriptor (read back by the critical-path analyzer).
            sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{vpid},\"tid\":0,\"name\":\"union_run\",\"args\":{{\
                 \"run\":{run},\"label\":\"{}\",\"sched\":\"{}\",\"threads\":{},\
                 \"wall_ns\":{},\"end_ns\":{},\"sample_rate\":{}}}}}",
                escape(&label),
                escape(&meta.sched),
                meta.threads,
                meta.wall_ns,
                meta.end_ns,
                self.sample_rate,
            ));

            // LP tracks: sort by (lp, recv, stable index) so `ts` is
            // monotonic per track even when rolled-back executions were
            // recorded out of virtual-time order.
            let mut order: Vec<(usize, usize)> = Vec::new();
            for (bi, b) in bufs.iter().enumerate() {
                for ei in 0..b.events.len() {
                    order.push((bi, ei));
                }
            }
            order.sort_by_key(|&(bi, ei)| {
                let e = &bufs[bi].events[ei];
                (e.lp, e.recv_ns, bi, ei)
            });
            for (bi, ei) in order {
                let e = &bufs[bi].events[ei];
                let is_committed = committed[bi][ei];
                let name =
                    meta.kind_names.get(e.kind as usize).map(String::as_str).unwrap_or("event");
                sep(&mut out, &mut first);
                out.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":{vpid},\"tid\":{},\"name\":\"{}\",\
                     \"ts\":{},\"dur\":{}",
                    e.lp,
                    escape(name),
                    micros(e.recv_ns),
                    micros(e.dur_ns),
                ));
                if !is_committed {
                    out.push_str(",\"cname\":\"terrible\"");
                }
                out.push_str(&format!(
                    ",\"args\":{{\"src\":{},\"st\":{},\"us\":{},\"q\":{},\"lo\":{},\
                     \"nc\":{},\"k\":{},\"w\":{}}}}}",
                    e.src,
                    e.send_ns,
                    e.uid_src,
                    e.uid_seq,
                    e.child_lo,
                    e.children,
                    e.kind,
                    u8::from(!is_committed),
                ));
            }

            // Scheduler-phase spans, wall clock, one track per worker.
            for b in &bufs {
                let mut spans: Vec<&TraceSpan> = b.spans.iter().collect();
                spans.sort_by_key(|s| s.start_ns);
                for s in spans {
                    sep(&mut out, &mut first);
                    out.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":{spid},\"tid\":{},\"name\":\"{}\",\
                         \"ts\":{},\"dur\":{},\"cname\":\"{}\",\"args\":{{}}}}",
                        b.thread,
                        s.kind.label(),
                        micros(s.start_ns),
                        micros(s.dur_ns),
                        s.kind.cname(),
                    ));
                }
            }
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"tool\":\"union-exp\",\
             \"events_dropped\":{},\"spans_dropped\":{}}}}}",
            self.events_dropped(),
            self.spans_dropped(),
        ));
        out
    }
}

/// Rough per-buffer JSON size for the export's initial allocation.
fn buf_estimate(b: &SubmittedBuf) -> usize {
    b.events.len() * 160 + b.spans.len() * 120
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn push_meta(out: &mut String, first: &mut bool, pid: u32, tid: u32, kind: &str, name: &str) {
    sep(out, first);
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{kind}\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    ));
}

/// Nanoseconds → microseconds with nanosecond precision (3 decimals),
/// the unit Chrome trace `ts`/`dur` fields use.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-buffer committed flags for one run's buffers. An event uid with
/// `n` execution records and `m` rollback marks is committed iff
/// `n > m`, and the committed record is the last execution in its
/// owning thread's buffer.
fn resolve_committed(bufs: &[&SubmittedBuf]) -> Vec<Vec<bool>> {
    let any_marks = bufs.iter().any(|b| !b.marks.is_empty());
    if !any_marks {
        return bufs.iter().map(|b| vec![true; b.events.len()]).collect();
    }
    /// uid → (execution count, rollback-mark count, last exec (buf, idx)).
    type UidTally = HashMap<(u32, u64), (u32, u32, (usize, usize))>;
    let mut by_uid: UidTally = HashMap::new();
    for (bi, b) in bufs.iter().enumerate() {
        for (ei, e) in b.events.iter().enumerate() {
            let entry = by_uid.entry((e.uid_src, e.uid_seq)).or_insert((0, 0, (bi, ei)));
            entry.0 += 1;
            entry.2 = (bi, ei);
        }
        for m in &b.marks {
            by_uid.entry((m.src, m.seq)).or_insert((0, 0, (0, 0))).1 += 1;
        }
    }
    let mut committed: Vec<Vec<bool>> = bufs.iter().map(|b| vec![false; b.events.len()]).collect();
    for (execs, marks, (bi, ei)) in by_uid.into_values() {
        if execs > marks {
            committed[bi][ei] = true;
        }
    }
    committed
}

/// Per-worker trace buffer. Created with [`Tracer::buf`], filled on the
/// scheduler hot path, handed back with [`Tracer::submit`].
pub struct TraceBuf {
    run: u32,
    thread: u32,
    start: Instant,
    rate: u32,
    countdown: u32,
    /// Shared event budget hit zero: stop reading the clock.
    dry: bool,
    last_dur: u64,
    event_credit: u64,
    span_credit: u64,
    dropped_events: u64,
    dropped_spans: u64,
    event_budget: Arc<AtomicI64>,
    span_budget: Arc<AtomicI64>,
    events: Vec<TraceEvent>,
    marks: Vec<EventUid>,
    spans: Vec<TraceSpan>,
}

impl TraceBuf {
    /// The run this buffer records into.
    pub fn run(&self) -> u32 {
        self.run
    }

    /// Call before the handler runs: returns a start instant on the
    /// events whose duration is measured this time (every
    /// `sample_rate`-th per thread), `None` otherwise. Once the shared
    /// event budget is exhausted (it never refills) the clock is not
    /// read at all — records would be dropped anyway, and on hosts
    /// without a vDSO clock two reads per event dominate tracing cost.
    #[inline]
    pub fn event_start(&mut self) -> Option<Instant> {
        if self.dry {
            return None;
        }
        if self.rate <= 1 {
            return Some(Instant::now());
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.rate;
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record one executed event. `uid_lo` is the destination LP's
    /// `uid_seq` before the handler ran, `children` the number of sends
    /// it sealed, `t0` the instant from [`TraceBuf::event_start`].
    #[inline]
    pub fn record<E>(
        &mut self,
        env: &Envelope<E>,
        uid_lo: u64,
        children: u32,
        kind: u16,
        t0: Option<Instant>,
    ) {
        if self.dry {
            self.dropped_events += 1;
            return;
        }
        let dur_ns = match t0 {
            Some(t0) => {
                let d = t0.elapsed().as_nanos() as u64;
                self.last_dur = d;
                d
            }
            None => self.last_dur,
        };
        if !self.take_event_credit() {
            return;
        }
        self.events.push(TraceEvent {
            lp: env.dst,
            src: env.src,
            kind,
            recv_ns: env.recv_time.as_ns(),
            send_ns: env.send_time.as_ns(),
            uid_src: env.uid.src,
            uid_seq: env.uid.seq,
            child_lo: uid_lo,
            children,
            dur_ns,
        });
    }

    /// Record that the execution of `uid` was undone by a rollback (or
    /// annihilated by an anti-message after executing).
    #[inline]
    pub fn mark_rolled_back(&mut self, uid: EventUid) {
        // Marks are tiny and bounded by executions, which are themselves
        // budgeted; no separate cap.
        self.marks.push(uid);
    }

    /// Record a scheduler-phase span started at `t0` and ending now.
    #[inline]
    pub fn end_span(&mut self, kind: SpanKind, t0: Instant) {
        if !self.take_span_credit() {
            return;
        }
        let start_ns = t0.duration_since(self.start).as_nanos() as u64;
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.spans.push(TraceSpan { kind, start_ns, dur_ns });
    }

    #[inline]
    fn take_event_credit(&mut self) -> bool {
        if self.event_credit > 0 {
            self.event_credit -= 1;
            return true;
        }
        if self.event_budget.fetch_sub(EVENT_CHUNK as i64, Ordering::Relaxed) > 0 {
            self.event_credit = EVENT_CHUNK - 1;
            true
        } else {
            self.dry = true;
            self.dropped_events += 1;
            false
        }
    }

    #[inline]
    fn take_span_credit(&mut self) -> bool {
        if self.span_credit > 0 {
            self.span_credit -= 1;
            return true;
        }
        if self.span_budget.fetch_sub(SPAN_CHUNK as i64, Ordering::Relaxed) > 0 {
            self.span_credit = SPAN_CHUNK - 1;
            true
        } else {
            self.dropped_spans += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn env(dst: u32, src: u32, recv: u64, send: u64, seq: u64) -> Envelope<()> {
        Envelope {
            recv_time: SimTime(recv),
            send_time: SimTime(send),
            src,
            dst,
            tiebreak: seq,
            uid: EventUid { src, seq },
            payload: (),
        }
    }

    #[test]
    fn records_and_exports_one_run() {
        let tr = Tracer::new(1);
        tr.label_next_run("demo");
        tr.stage_kind_names(vec!["net".into(), "comm".into()]);
        let run = tr.open_run("sequential", 1);
        let mut buf = tr.buf(run, 0);
        let t0 = buf.event_start();
        buf.record(&env(0, 0, 10, 0, 0), 0, 1, 1, t0);
        let t0 = buf.event_start();
        buf.record(&env(1, 0, 20, 10, 0), 1, 0, 0, t0);
        tr.submit(buf);
        tr.close_run(run, 1000, 20);
        let json = tr.to_chrome_json();
        assert!(json.contains("\"union_run\""), "{json}");
        assert!(json.contains("\"comm\""), "{json}");
        assert!(json.contains("\"sched\":\"sequential\""), "{json}");
        assert!(json.contains("\"w\":0"), "{json}");
        assert!(!json.contains("\"w\":1"), "{json}");
        assert_eq!(tr.events_dropped(), 0);
    }

    #[test]
    fn rollback_marks_flag_wasted_executions() {
        let tr = Tracer::new(1);
        let run = tr.open_run("optimistic", 2);
        let mut buf = tr.buf(run, 0);
        // Event (src 0, seq 5) executes, is rolled back, re-executes.
        let t0 = buf.event_start();
        buf.record(&env(1, 0, 10, 0, 5), 0, 2, 0, t0);
        buf.mark_rolled_back(EventUid { src: 0, seq: 5 });
        let t0 = buf.event_start();
        buf.record(&env(1, 0, 10, 0, 5), 2, 2, 0, t0);
        // Event (src 0, seq 6) executes and stays rolled back.
        let t0 = buf.event_start();
        buf.record(&env(1, 0, 12, 0, 6), 4, 0, 0, t0);
        buf.mark_rolled_back(EventUid { src: 0, seq: 6 });
        tr.submit(buf);
        tr.close_run(run, 500, 12);
        let json = tr.to_chrome_json();
        let wasted = json.matches("\"w\":1").count();
        let kept = json.matches("\"w\":0").count();
        assert_eq!(wasted, 2, "{json}");
        assert_eq!(kept, 1, "{json}");
    }

    #[test]
    fn event_cap_counts_drops() {
        let tr = Tracer::with_caps(1, 2, 1);
        let run = tr.open_run("sequential", 1);
        let mut buf = tr.buf(run, 0);
        for i in 0..10 {
            let t0 = buf.event_start();
            buf.record(&env(0, 0, i, 0, i), i, 0, 0, t0);
        }
        tr.submit(buf);
        // The first chunk grant covers all 10 (chunked budgeting
        // overshoots by at most one chunk); a second buffer gets nothing.
        let mut buf2 = tr.buf(run, 1);
        for i in 0..5 {
            let t0 = buf2.event_start();
            buf2.record(&env(1, 1, i, 0, i), i, 0, 0, t0);
        }
        tr.submit(buf2);
        assert_eq!(tr.events_dropped(), 5);
        assert!(tr.to_chrome_json().contains("\"events_dropped\":5"));
    }

    #[test]
    fn sampling_carries_last_measured_duration() {
        let tr = Tracer::new(4);
        let run = tr.open_run("sequential", 1);
        let mut buf = tr.buf(run, 0);
        let mut measured = 0;
        for i in 0..8 {
            let t0 = buf.event_start();
            measured += usize::from(t0.is_some());
            buf.record(&env(0, 0, i, 0, i), i, 0, 0, t0);
        }
        assert_eq!(measured, 2, "rate 4 over 8 events measures twice");
        tr.submit(buf);
    }

    #[test]
    fn chrome_ts_is_monotonic_per_track_even_when_recorded_out_of_order() {
        let tr = Tracer::new(1);
        let run = tr.open_run("optimistic", 1);
        let mut buf = tr.buf(run, 0);
        // Wasted execution at t=100µs recorded before committed t=50µs.
        let t0 = buf.event_start();
        buf.record(&env(0, 1, 100_000, 0, 9), 0, 0, 0, t0);
        buf.mark_rolled_back(EventUid { src: 1, seq: 9 });
        let t0 = buf.event_start();
        buf.record(&env(0, 1, 50_000, 0, 8), 0, 0, 0, t0);
        tr.submit(buf);
        let json = tr.to_chrome_json();
        let i50 = json.find("\"ts\":50.000").expect("t=50 event");
        let i100 = json.find("\"ts\":100.000").expect("t=100 event");
        assert!(i50 < i100, "events must be sorted by ts per track");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
